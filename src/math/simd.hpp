/**
 * @file
 * Portable 8-lane float SIMD batches for the compositing hot loops.
 *
 * F8 is a fixed-width batch of 8 floats with one backend selected per
 * translation unit:
 *
 *   - AVX2:          one 256-bit register
 *   - SSE2 (the x86-64 baseline): two 128-bit registers
 *   - NEON (`__aarch64__`):       two 128-bit registers
 *   - scalar fallback:            a plain float[8]
 *
 * Ordinary translation units get the backend the compiler flags allow
 * (`__AVX2__` from -march=native, else `__SSE2__`/NEON, else scalar).
 * The per-ISA render kernel TUs (render/simd_kernels_*.cpp) instead
 * *force* a backend by defining CLM_F8_FORCE_{AVX2,SSE2,NEON,SCALAR}
 * before including this header — that is how one binary carries kernels
 * for several ISAs and picks between them at startup (runtime dispatch;
 * see math/simd_backend.hpp). Each backend lives in its own inline
 * namespace (clm::f8_avx2::F8, clm::f8_sse2::F8, ...), so forced TUs
 * with different backends can coexist in one binary without ODR
 * violations while plain `clm::F8` keeps working everywhere.
 *
 * Building with `-DCLM_DISABLE_SIMD=ON` forces the scalar fallback AND
 * flips the default of RenderConfig::use_simd to false, so the whole
 * binary reproduces the pre-SIMD scalar reference bit for bit.
 *
 * Every backend performs the *same* IEEE-754 single-precision operation
 * sequence — no FMA contraction, division is the correctly-rounded IEEE
 * quotient everywhere, and min/max follow the SSE convention
 * `min(a, b) = a < b ? a : b` (returns b on unordered) on every backend —
 * so a given F8 expression produces bitwise-identical results on every
 * ISA and on the scalar fallback. Results are therefore run-to-run and
 * machine-to-machine deterministic, and independent of the dispatch
 * choice; only the speed changes.
 *
 * Masks are F8 values whose lanes are all-ones (true) or all-zeros
 * (false) bit patterns, as produced by lt()/gt(); combine them with
 * bitAnd/bitOr/bitAndNot and apply them with select().
 */

#ifndef CLM_MATH_SIMD_HPP
#define CLM_MATH_SIMD_HPP

#include <cmath>
#include <cstdint>
#include <cstring>

#include "math/simd_backend.hpp"

// Backend selection: an explicit CLM_F8_FORCE_* request (kernel TUs)
// wins; otherwise the compiler flags decide, exactly as before runtime
// dispatch existed.
#if defined(CLM_F8_FORCE_AVX2)
#define CLM_SIMD_ISA_AVX2 1
#elif defined(CLM_F8_FORCE_SSE2)
#define CLM_SIMD_ISA_SSE2 1
#elif defined(CLM_F8_FORCE_NEON)
#define CLM_SIMD_ISA_NEON 1
#elif defined(CLM_F8_FORCE_SCALAR)
#define CLM_SIMD_ISA_SCALAR 1
#elif !defined(CLM_DISABLE_SIMD) && defined(__AVX2__)
#define CLM_SIMD_ISA_AVX2 1
#elif !defined(CLM_DISABLE_SIMD) && defined(__SSE2__)
#define CLM_SIMD_ISA_SSE2 1
#elif !defined(CLM_DISABLE_SIMD) && defined(__aarch64__) \
    && defined(__ARM_NEON)
#define CLM_SIMD_ISA_NEON 1
#else
#define CLM_SIMD_ISA_SCALAR 1
#endif

#if defined(CLM_SIMD_ISA_AVX2)
#include <immintrin.h>
#define CLM_F8_NAMESPACE f8_avx2
#elif defined(CLM_SIMD_ISA_SSE2)
#include <emmintrin.h>
#define CLM_F8_NAMESPACE f8_sse2
#elif defined(CLM_SIMD_ISA_NEON)
#include <arm_neon.h>
#define CLM_F8_NAMESPACE f8_neon
#else
#define CLM_F8_NAMESPACE f8_scalar
#endif

namespace clm {

/** Measured ULP bound of exp8() against the correctly-rounded float
 *  exponential over its full clamped domain [-87.34, 88.38] (asserted by
 *  test_simd.cpp with a dense sweep). */
constexpr int kExp8MaxUlp = 2;

/** This TU's F8 backend lives here; `clm::F8` resolves through the
 *  inline namespace, while the qualified names stay distinct per
 *  backend so multi-backend binaries are ODR-clean. */
inline namespace CLM_F8_NAMESPACE {

#if defined(CLM_SIMD_ISA_AVX2)

struct F8
{
    __m256 v;

    static F8 broadcast(float x) { return {_mm256_set1_ps(x)}; }
    static F8 zero() { return {_mm256_setzero_ps()}; }
    static F8 load(const float *p) { return {_mm256_loadu_ps(p)}; }
    void store(float *p) const { _mm256_storeu_ps(p, v); }

    static F8 min(F8 a, F8 b) { return {_mm256_min_ps(a.v, b.v)}; }
    static F8 max(F8 a, F8 b) { return {_mm256_max_ps(a.v, b.v)}; }

    static F8 lt(F8 a, F8 b)
    { return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)}; }
    static F8 gt(F8 a, F8 b)
    { return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)}; }

    static F8 bitAnd(F8 a, F8 b) { return {_mm256_and_ps(a.v, b.v)}; }
    static F8 bitOr(F8 a, F8 b) { return {_mm256_or_ps(a.v, b.v)}; }
    /** (~mask) & v */
    static F8 bitAndNot(F8 mask, F8 v)
    { return {_mm256_andnot_ps(mask.v, v.v)}; }

    /** Bitwise per-lane mask ? a : b (mask lanes all-ones/all-zeros). */
    static F8 select(F8 mask, F8 a, F8 b)
    {
        return {_mm256_or_ps(_mm256_and_ps(mask.v, a.v),
                             _mm256_andnot_ps(mask.v, b.v))};
    }

    static bool any(F8 mask) { return _mm256_movemask_ps(mask.v) != 0; }
    static bool all(F8 mask)
    { return _mm256_movemask_ps(mask.v) == 0xff; }

    /** Round each lane to the nearest integer n (ties to even; |x| must
     *  stay well under 2^22) returning n as float plus 2^n assembled via
     *  the exponent field (n must stay within [-126, 127]). */
    static void roundAndExp2(F8 x, F8 &n_float, F8 &pow2n)
    {
        __m256i n = _mm256_cvtps_epi32(x.v);
        n_float = {_mm256_cvtepi32_ps(n)};
        __m256i e =
            _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)),
                              23);
        pow2n = {_mm256_castsi256_ps(e)};
    }
};

// Arithmetic lives OUTSIDE the class on every backend: GCC applies a
// `#pragma GCC target` region (how the AVX2 kernel TU builds without
// -mavx2) to free inline functions but NOT to friend functions defined
// inside a class body — those would be codegen'd for the baseline ISA
// and fail to inline the always_inline intrinsics.
inline F8 operator+(F8 a, F8 b) { return {_mm256_add_ps(a.v, b.v)}; }
inline F8 operator-(F8 a, F8 b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline F8 operator*(F8 a, F8 b) { return {_mm256_mul_ps(a.v, b.v)}; }
/** IEEE single division — correctly rounded on every backend, so
 *  quotients are bitwise identical across ISAs like every other op. */
inline F8 operator/(F8 a, F8 b) { return {_mm256_div_ps(a.v, b.v)}; }

#elif defined(CLM_SIMD_ISA_SSE2)

struct F8
{
    __m128 lo, hi;

    static F8 broadcast(float x)
    { return {_mm_set1_ps(x), _mm_set1_ps(x)}; }
    static F8 zero()
    { return {_mm_setzero_ps(), _mm_setzero_ps()}; }
    static F8 load(const float *p)
    { return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)}; }
    void store(float *p) const
    {
        _mm_storeu_ps(p, lo);
        _mm_storeu_ps(p + 4, hi);
    }

    static F8 min(F8 a, F8 b)
    { return {_mm_min_ps(a.lo, b.lo), _mm_min_ps(a.hi, b.hi)}; }
    static F8 max(F8 a, F8 b)
    { return {_mm_max_ps(a.lo, b.lo), _mm_max_ps(a.hi, b.hi)}; }

    static F8 lt(F8 a, F8 b)
    { return {_mm_cmplt_ps(a.lo, b.lo), _mm_cmplt_ps(a.hi, b.hi)}; }
    static F8 gt(F8 a, F8 b)
    { return {_mm_cmpgt_ps(a.lo, b.lo), _mm_cmpgt_ps(a.hi, b.hi)}; }

    static F8 bitAnd(F8 a, F8 b)
    { return {_mm_and_ps(a.lo, b.lo), _mm_and_ps(a.hi, b.hi)}; }
    static F8 bitOr(F8 a, F8 b)
    { return {_mm_or_ps(a.lo, b.lo), _mm_or_ps(a.hi, b.hi)}; }
    static F8 bitAndNot(F8 mask, F8 v)
    { return {_mm_andnot_ps(mask.lo, v.lo), _mm_andnot_ps(mask.hi, v.hi)}; }

    static F8 select(F8 mask, F8 a, F8 b)
    {
        return {_mm_or_ps(_mm_and_ps(mask.lo, a.lo),
                          _mm_andnot_ps(mask.lo, b.lo)),
                _mm_or_ps(_mm_and_ps(mask.hi, a.hi),
                          _mm_andnot_ps(mask.hi, b.hi))};
    }

    static bool any(F8 mask)
    {
        return (_mm_movemask_ps(mask.lo) | _mm_movemask_ps(mask.hi)) != 0;
    }
    static bool all(F8 mask)
    {
        return (_mm_movemask_ps(mask.lo) & _mm_movemask_ps(mask.hi)) == 0xf;
    }

    static void roundAndExp2(F8 x, F8 &n_float, F8 &pow2n)
    {
        __m128i nl = _mm_cvtps_epi32(x.lo);
        __m128i nh = _mm_cvtps_epi32(x.hi);
        n_float = {_mm_cvtepi32_ps(nl), _mm_cvtepi32_ps(nh)};
        __m128i bias = _mm_set1_epi32(127);
        pow2n = {_mm_castsi128_ps(
                     _mm_slli_epi32(_mm_add_epi32(nl, bias), 23)),
                 _mm_castsi128_ps(
                     _mm_slli_epi32(_mm_add_epi32(nh, bias), 23))};
    }
};

// Out-of-class for pragma-target compatibility (see the AVX2 backend).
inline F8 operator+(F8 a, F8 b)
{ return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)}; }
inline F8 operator-(F8 a, F8 b)
{ return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)}; }
inline F8 operator*(F8 a, F8 b)
{ return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)}; }
inline F8 operator/(F8 a, F8 b)
{ return {_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)}; }

#elif defined(CLM_SIMD_ISA_NEON)

struct F8
{
    float32x4_t lo, hi;

    static F8 broadcast(float x)
    { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
    static F8 zero()
    { return {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)}; }
    static F8 load(const float *p)
    { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
    void store(float *p) const
    {
        vst1q_f32(p, lo);
        vst1q_f32(p + 4, hi);
    }

    static F8 lt(F8 a, F8 b)
    {
        return {vreinterpretq_f32_u32(vcltq_f32(a.lo, b.lo)),
                vreinterpretq_f32_u32(vcltq_f32(a.hi, b.hi))};
    }
    static F8 gt(F8 a, F8 b)
    {
        return {vreinterpretq_f32_u32(vcgtq_f32(a.lo, b.lo)),
                vreinterpretq_f32_u32(vcgtq_f32(a.hi, b.hi))};
    }

    /** vminq_f32 differs from SSE on NaN, so min/max are built from the
     *  compare + select the other backends are exactly equivalent to. */
    static F8 min(F8 a, F8 b) { return select(lt(a, b), a, b); }
    static F8 max(F8 a, F8 b) { return select(gt(a, b), a, b); }

    static F8 bitAnd(F8 a, F8 b)
    {
        return {vreinterpretq_f32_u32(
                    vandq_u32(vreinterpretq_u32_f32(a.lo),
                              vreinterpretq_u32_f32(b.lo))),
                vreinterpretq_f32_u32(
                    vandq_u32(vreinterpretq_u32_f32(a.hi),
                              vreinterpretq_u32_f32(b.hi)))};
    }
    static F8 bitOr(F8 a, F8 b)
    {
        return {vreinterpretq_f32_u32(
                    vorrq_u32(vreinterpretq_u32_f32(a.lo),
                              vreinterpretq_u32_f32(b.lo))),
                vreinterpretq_f32_u32(
                    vorrq_u32(vreinterpretq_u32_f32(a.hi),
                              vreinterpretq_u32_f32(b.hi)))};
    }
    static F8 bitAndNot(F8 mask, F8 v)
    {
        return {vreinterpretq_f32_u32(
                    vbicq_u32(vreinterpretq_u32_f32(v.lo),
                              vreinterpretq_u32_f32(mask.lo))),
                vreinterpretq_f32_u32(
                    vbicq_u32(vreinterpretq_u32_f32(v.hi),
                              vreinterpretq_u32_f32(mask.hi)))};
    }

    static F8 select(F8 mask, F8 a, F8 b)
    {
        return {vbslq_f32(vreinterpretq_u32_f32(mask.lo), a.lo, b.lo),
                vbslq_f32(vreinterpretq_u32_f32(mask.hi), a.hi, b.hi)};
    }

    static bool any(F8 mask)
    {
        return (vmaxvq_u32(vreinterpretq_u32_f32(mask.lo))
                | vmaxvq_u32(vreinterpretq_u32_f32(mask.hi)))
            != 0;
    }
    static bool all(F8 mask)
    {
        return vminvq_u32(vreinterpretq_u32_f32(mask.lo)) == 0xffffffffu
            && vminvq_u32(vreinterpretq_u32_f32(mask.hi)) == 0xffffffffu;
    }

    static void roundAndExp2(F8 x, F8 &n_float, F8 &pow2n)
    {
        int32x4_t nl = vcvtnq_s32_f32(x.lo);    // nearest, ties to even
        int32x4_t nh = vcvtnq_s32_f32(x.hi);
        n_float = {vcvtq_f32_s32(nl), vcvtq_f32_s32(nh)};
        int32x4_t bias = vdupq_n_s32(127);
        pow2n = {vreinterpretq_f32_s32(
                     vshlq_n_s32(vaddq_s32(nl, bias), 23)),
                 vreinterpretq_f32_s32(
                     vshlq_n_s32(vaddq_s32(nh, bias), 23))};
    }
};

// Out-of-class for pragma-target compatibility (see the AVX2 backend).
inline F8 operator+(F8 a, F8 b)
{ return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)}; }
inline F8 operator-(F8 a, F8 b)
{ return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)}; }
inline F8 operator*(F8 a, F8 b)
{ return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)}; }
/** vdivq_f32 (AArch64) is the correctly-rounded IEEE quotient. */
inline F8 operator/(F8 a, F8 b)
{ return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)}; }

#else    // CLM_SIMD_ISA_SCALAR

struct F8
{
    float v[8];

    static F8 broadcast(float x)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = x;
        return r;
    }
    static F8 zero() { return broadcast(0.0f); }
    static F8 load(const float *p)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = p[l];
        return r;
    }
    void store(float *p) const
    {
        for (int l = 0; l < 8; ++l)
            p[l] = v[l];
    }

    // SSE semantics: min(a, b) = a < b ? a : b (b on unordered).
    static F8 min(F8 a, F8 b)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
        return r;
    }
    static F8 max(F8 a, F8 b)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = a.v[l] > b.v[l] ? a.v[l] : b.v[l];
        return r;
    }

    static uint32_t bits(float x)
    {
        uint32_t u;
        std::memcpy(&u, &x, sizeof(u));
        return u;
    }
    static float fromBits(uint32_t u)
    {
        float x;
        std::memcpy(&x, &u, sizeof(x));
        return x;
    }

    static F8 lt(F8 a, F8 b)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = fromBits(a.v[l] < b.v[l] ? 0xffffffffu : 0u);
        return r;
    }
    static F8 gt(F8 a, F8 b)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = fromBits(a.v[l] > b.v[l] ? 0xffffffffu : 0u);
        return r;
    }

    static F8 bitAnd(F8 a, F8 b)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = fromBits(bits(a.v[l]) & bits(b.v[l]));
        return r;
    }
    static F8 bitOr(F8 a, F8 b)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = fromBits(bits(a.v[l]) | bits(b.v[l]));
        return r;
    }
    static F8 bitAndNot(F8 mask, F8 v_)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = fromBits(~bits(mask.v[l]) & bits(v_.v[l]));
        return r;
    }

    static F8 select(F8 mask, F8 a, F8 b)
    {
        F8 r;
        for (int l = 0; l < 8; ++l)
            r.v[l] = fromBits((bits(mask.v[l]) & bits(a.v[l]))
                              | (~bits(mask.v[l]) & bits(b.v[l])));
        return r;
    }

    static bool any(F8 mask)
    {
        for (int l = 0; l < 8; ++l)
            if (bits(mask.v[l]) & 0x80000000u)
                return true;
        return false;
    }
    static bool all(F8 mask)
    {
        for (int l = 0; l < 8; ++l)
            if (!(bits(mask.v[l]) & 0x80000000u))
                return false;
        return true;
    }

    static void roundAndExp2(F8 x, F8 &n_float, F8 &pow2n)
    {
        for (int l = 0; l < 8; ++l) {
            // lrintf: nearest, ties to even (default rounding mode) —
            // matches cvtps_epi32 / vcvtnq.
            int32_t n = static_cast<int32_t>(std::lrint(x.v[l]));
            n_float.v[l] = static_cast<float>(n);
            pow2n.v[l] =
                fromBits(static_cast<uint32_t>(n + 127) << 23);
        }
    }
};

// Out-of-class for pragma-target compatibility (see the AVX2 backend).
inline F8
operator+(F8 a, F8 b)
{
    F8 r;
    for (int l = 0; l < 8; ++l)
        r.v[l] = a.v[l] + b.v[l];
    return r;
}
inline F8
operator-(F8 a, F8 b)
{
    F8 r;
    for (int l = 0; l < 8; ++l)
        r.v[l] = a.v[l] - b.v[l];
    return r;
}
inline F8
operator*(F8 a, F8 b)
{
    F8 r;
    for (int l = 0; l < 8; ++l)
        r.v[l] = a.v[l] * b.v[l];
    return r;
}
inline F8
operator/(F8 a, F8 b)
{
    F8 r;
    for (int l = 0; l < 8; ++l)
        r.v[l] = a.v[l] / b.v[l];
    return r;
}

#endif    // backend selection

/**
 * Batched single-precision e^x (Cephes-style polynomial, the classic
 * sse_mathfun kernel): range-reduce x = n*ln2 + r with a two-constant
 * Cody-Waite ln2, evaluate a degree-7 minimax polynomial of e^r on
 * r in [-ln2/2, ln2/2], and scale by 2^n through the exponent field.
 *
 * Domain: x is clamped to [-87.34, 88.38] (results saturate at the
 * finite-float boundaries; no infinities or denormal-scaling surprises).
 * Accuracy: within kExp8MaxUlp (= 2) ULP of the correctly-rounded float
 * exponential over the whole clamped domain — asserted against a dense
 * sweep by test_simd.cpp. exp8(0) == 1 exactly.
 *
 * Deterministic: a fixed op sequence of IEEE single ops (no FMA), so the
 * result is bitwise identical across runs, thread counts, and backends.
 */
inline F8
exp8(F8 x)
{
    const F8 hi = F8::broadcast(88.3762626647949f);
    const F8 lo = F8::broadcast(-87.3365478515625f);
    const F8 log2e = F8::broadcast(1.44269504088896341f);
    const F8 ln2_hi = F8::broadcast(0.693359375f);
    const F8 ln2_lo = F8::broadcast(-2.12194440e-4f);
    const F8 one = F8::broadcast(1.0f);

    x = F8::min(x, hi);
    x = F8::max(x, lo);

    // n = round(x / ln2), r = x - n*ln2 (hi+lo split keeps r accurate).
    F8 n_float, pow2n;
    F8::roundAndExp2(x * log2e, n_float, pow2n);
    F8 r = x - n_float * ln2_hi;
    r = r - n_float * ln2_lo;

    F8 z = r * r;
    F8 p = F8::broadcast(1.9875691500e-4f);
    p = p * r + F8::broadcast(1.3981999507e-3f);
    p = p * r + F8::broadcast(8.3334519073e-3f);
    p = p * r + F8::broadcast(4.1665795894e-2f);
    p = p * r + F8::broadcast(1.6666665459e-1f);
    p = p * r + F8::broadcast(5.0000001201e-1f);
    F8 y = p * z + r + one;
    return y * pow2n;
}

} // inline namespace CLM_F8_NAMESPACE

} // namespace clm

#endif // CLM_MATH_SIMD_HPP
