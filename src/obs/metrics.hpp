/**
 * @file
 * The unified metrics layer: named counters, gauges, and deterministic
 * fixed-log-bucket histograms that every subsystem reports through, so
 * runtime behavior is observable through ONE registry instead of the
 * bespoke per-subsystem stat structs that accumulated through PR 4-8
 * (ServeStats counters, RenderArena stage timers, sim/stage_timings).
 *
 * Design constraints, in order:
 *  - *Determinism of reported values.* A Histogram is a fixed set of
 *    log-spaced buckets holding integer counts, with the sum kept in
 *    fixed-point microunits: additions commute, so the merged result of
 *    N per-thread histograms is bitwise independent of merge order and
 *    of worker interleaving — unlike a floating-point sum, whose value
 *    depends on accumulation order. Percentiles are bucket upper edges:
 *    a pure function of the counts.
 *  - *Lock-free recording.* Counter/Gauge/Histogram record through
 *    relaxed atomics; there is no lock anywhere on the record path.
 *    Registration (name -> metric lookup) takes the registry mutex, so
 *    hot paths resolve their metric handles once and keep the pointer.
 *  - *Mergeability.* Histogram::merge folds another histogram in by
 *    bucket-wise addition — the cross-thread aggregation primitive.
 *
 * Exporters: MetricsRegistry::writeJsonLine emits one self-contained
 * JSON object (counters, gauges, histogram summaries + sparse buckets)
 * per call — the JSON-lines snapshot format; MetricsExporter runs a
 * background thread writing one line every N ms (clm_cli
 * --metrics-every-ms).
 */

#ifndef CLM_OBS_METRICS_HPP
#define CLM_OBS_METRICS_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace clm {

/** Monotonic event counter (lock-free). */
class Counter
{
  public:
    void add(uint64_t n = 1)
    { value_.fetch_add(n, std::memory_order_relaxed); }

    uint64_t value() const
    { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (lock-free). */
class Gauge
{
  public:
    void set(double v);
    double value() const;

  private:
    std::atomic<uint64_t> bits_{0};    //!< Double stored as raw bits.
};

/** Read-only summary of a histogram at one instant. */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    /** Non-empty buckets only: (upper edge, count). The overflow
     *  bucket's edge is reported as the exact max observed. */
    std::vector<std::pair<double, uint64_t>> buckets;
    /** Geometry bucket index of each `buckets` entry, parallel to it.
     *  Subtraction keys on this, NOT on the upper edge: the overflow
     *  bucket's reported edge is the running max, which moves between
     *  snapshots of the same histogram. */
    std::vector<uint32_t> bucket_index;

    /** Nearest-rank percentile over this snapshot's sparse buckets
     *  (same definition as Histogram::percentile); 0 when empty. */
    double percentile(double p) const;

    /** The window `this - prev` for two snapshots of the SAME
     *  histogram taken at different times (prev earlier): bucket
     *  counts and sum are subtracted (clamped at zero), p50/p90/p99
     *  are recomputed from the windowed buckets. min/max are the
     *  running cumulative values (a log-bucket histogram cannot
     *  window an exact extremum), so the windowed overflow bucket
     *  still reports the cumulative max as its edge. */
    HistogramSnapshot delta(const HistogramSnapshot &prev) const;
};

/**
 * Fixed-log-bucket histogram over (0, +inf) values (see file comment
 * for the determinism argument). Bucket edges are lo * 2^(i/k) for k
 * sub-buckets per octave, fixed at construction: bucket 0 holds v <=
 * lo (underflow), the last bucket holds v > hi (overflow), and
 * percentile() answers with the upper edge of the bucket containing
 * the requested rank (the exact max for the overflow bucket) —
 * deterministic for a given multiset of recorded values, however the
 * recording threads interleaved. NaN values are dropped (counted in
 * nan_dropped). Recording is lock-free; merge() is bucket-wise
 * addition.
 */
class Histogram
{
  public:
    /** Buckets span [@p lo, @p hi] with @p per_octave sub-buckets per
     *  doubling. lo/hi are clamped to sane positives. */
    Histogram(double lo, double hi, int per_octave = 8);

    /** Fold one sample in (lock-free, any thread). */
    void record(double v);

    /** Bucket-wise fold of @p other (same geometry required). */
    void merge(const Histogram &other);

    uint64_t count() const
    { return count_.load(std::memory_order_relaxed); }

    /** Sum of recorded values (fixed-point microunit accumulation, so
     *  it is exact to 1e-6 and merge-order independent). */
    double sum() const;
    double mean() const;
    double min() const;
    double max() const;

    /** Upper edge of the bucket holding the p-th percentile rank
     *  (p in [0, 100], clamped); 0 when empty. Deterministic. */
    double percentile(double p) const;

    uint64_t nanDropped() const
    { return nan_dropped_.load(std::memory_order_relaxed); }

    size_t bucketCount() const { return n_buckets_; }
    /** Upper edge of bucket @p i (the exact max for the last bucket). */
    double bucketUpperEdge(size_t i) const;
    uint64_t bucketValue(size_t i) const
    { return buckets_[i].load(std::memory_order_relaxed); }

    HistogramSnapshot snapshot() const;

    /** True when @p other has identical lo/hi/per-octave geometry. */
    bool sameGeometry(const Histogram &other) const;
    /** sameGeometry against constructor arguments (no temp needed). */
    bool matchesGeometry(double lo, double hi, int per_octave) const;

  private:
    size_t bucketIndex(double v) const;

    std::vector<double> edges_;    //!< Ascending; edges_[i] caps bucket i.
    size_t n_buckets_ = 0;         //!< edges_.size() + 1 (overflow).
    double lo_ = 0, hi_ = 0;
    int per_octave_ = 0;
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> nan_dropped_{0};
    std::atomic<int64_t> sum_micro_{0};    //!< Sum in 1e-6 units.
    std::atomic<uint64_t> min_bits_;       //!< Double bits (CAS-updated).
    std::atomic<uint64_t> max_bits_;
};

/**
 * Point-in-time copy of every metric in a registry — the unit the SLO
 * layer evaluates over. Two snapshots of the same registry subtract
 * (MetricsRegistry::snapshotDelta) into a *window*: counter deltas,
 * windowed histogram percentiles, and instantaneous gauges.
 */
struct RegistrySnapshot
{
    double ts_s = 0;    //!< Caller-supplied timestamp (seconds).
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
};

/** The window `now - prev` for two snapshots of the same registry:
 *  counters and histogram buckets subtract (metrics absent from
 *  @p prev contribute their full value); gauges keep `now`'s
 *  instantaneous value. */
RegistrySnapshot snapshotDiff(const RegistrySnapshot &now,
                              const RegistrySnapshot &prev);

/**
 * Named metric registry (see file comment). Metrics are created on
 * first lookup and live as long as the registry; returned references
 * are stable, so hot paths resolve once and record lock-free ever
 * after. Every RenderService owns a registry by default (pass
 * ServeConfig::metrics to aggregate several into one); global() is the
 * process-wide instance the training side reports through.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** Geometry arguments apply on first creation; later lookups of
     *  the same name return the existing histogram (geometry must
     *  match — asserted). */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         int per_octave = 8);

    /** One JSON-lines snapshot: a single-line JSON object with every
     *  counter, gauge, and histogram summary, stamped @p ts_s. */
    void writeJsonLine(std::ostream &os, double ts_s) const;

    /** Point-in-time copy of every registered metric. */
    RegistrySnapshot snapshot(double ts_s = 0) const;

    /** The window `now - prev`: counters and histogram buckets are
     *  subtracted (metrics absent from @p prev contribute their full
     *  cumulative value — they were zero then); gauges report their
     *  current instantaneous value. @p prev must be an earlier
     *  snapshot of THIS registry. */
    RegistrySnapshot snapshotDelta(const RegistrySnapshot &prev,
                                   double ts_s = 0) const;

    /** All registered metric names (sorted; tests/exporters). */
    std::vector<std::string> names() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Background JSON-lines exporter: writes one registry snapshot line to
 * @p path every @p period_ms until stop() (also run by the dtor, which
 * writes one final line so short runs never produce an empty file).
 * The registry must outlive the exporter.
 */
class MetricsExporter
{
  public:
    MetricsExporter(const MetricsRegistry &registry, std::string path,
                    double period_ms);
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter &) = delete;
    MetricsExporter &operator=(const MetricsExporter &) = delete;

    /** Final snapshot, then stop and join the writer thread. stop()
     *  ALWAYS writes one last line before joining — a run shorter
     *  than one period still exports its final window. */
    void stop();

    /** Snapshot lines written so far. */
    int snapshots() const
    { return snapshots_.load(std::memory_order_relaxed); }

    /** Install a hook invoked (on the writer thread) immediately
     *  BEFORE each snapshot line — periodic and final — with the
     *  line's timestamp. The SLO layer uses this to tick its monitor
     *  so verdict gauges land in the very line being written. The
     *  hook must not touch the exporter itself. */
    void setTickHook(std::function<void(double ts_s)> hook);

  private:
    void loop();

    const MetricsRegistry &registry_;
    std::ofstream out_;
    double period_ms_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool stopped_ = false;
    std::function<void(double)> tick_hook_;    //!< Guarded by mutex_.
    std::atomic<int> snapshots_{0};
    std::chrono::steady_clock::time_point epoch_;
    std::thread thread_;
};

} // namespace clm

#endif // CLM_OBS_METRICS_HPP
