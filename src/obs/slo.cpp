#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace clm {

namespace {

/** Full-consumption strtod: rejects "1.5x" instead of reading 1.5. */
bool parseDoubleToken(const std::string &tok, double *out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

std::string formatNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

std::vector<std::string> tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::istringstream is(line);
    std::string t;
    while (is >> t)
        toks.push_back(t);
    return toks;
}

/** Parse the trailing `[warn W] fail F` clause starting at @p i.
 *  Returns false (leaving *rule untouched beyond partial writes) on
 *  malformed input or a missing fail clause. */
bool parseThresholds(const std::vector<std::string> &toks, size_t i,
                     SloRule *rule)
{
    bool have_fail = false;
    while (i < toks.size())
    {
        if (i + 1 >= toks.size())
            return false;
        double v = 0;
        if (!parseDoubleToken(toks[i + 1], &v))
            return false;
        if (toks[i] == "warn")
            rule->warn = v;
        else if (toks[i] == "fail")
        {
            rule->fail = v;
            have_fail = true;
        }
        else
            return false;
        i += 2;
    }
    return have_fail;
}

} // namespace

const char *sloVerdictName(SloVerdict v)
{
    switch (v)
    {
    case SloVerdict::Healthy: return "healthy";
    case SloVerdict::Degraded: return "degraded";
    case SloVerdict::Breached: return "breached";
    }
    return "healthy";
}

std::string formatSloRule(const SloRule &r)
{
    std::string s;
    switch (r.kind)
    {
    case SloRuleKind::HistogramPercentile:
        s = "hist " + r.metric + " p" + formatNumber(r.percentile);
        break;
    case SloRuleKind::CounterRatio:
        s = "ratio " + r.metric + " / " + r.denominator;
        break;
    case SloRuleKind::GaugeBound:
        s = "gauge " + r.metric;
        break;
    }
    if (r.warn > 0)
        s += " warn " + formatNumber(r.warn);
    s += " fail " + formatNumber(r.fail);
    return s;
}

std::vector<SloRule> parseSloRules(const std::string &text, int *n_errors)
{
    std::vector<SloRule> rules;
    int errors = 0;
    std::string norm = text;
    std::replace(norm.begin(), norm.end(), ';', '\n');
    std::istringstream lines(norm);
    std::string line;
    while (std::getline(lines, line))
    {
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::vector<std::string> toks = tokenize(line);
        if (toks.empty())
            continue;

        SloRule rule;
        bool ok = false;
        if (toks[0] == "hist" && toks.size() >= 3 && toks[2].size() > 1 &&
            toks[2][0] == 'p')
        {
            rule.kind = SloRuleKind::HistogramPercentile;
            rule.metric = toks[1];
            double p = 0;
            ok = parseDoubleToken(toks[2].substr(1), &p) && p > 0 && p <= 100 &&
                 parseThresholds(toks, 3, &rule);
            rule.percentile = p;
            rule.name = rule.metric + ".p" + formatNumber(p);
        }
        else if (toks[0] == "ratio" && toks.size() >= 3)
        {
            rule.kind = SloRuleKind::CounterRatio;
            rule.metric = toks[1];
            size_t i = 2;
            if (toks[i] == "/" && toks.size() > 3)
                ++i;    // `ratio a / b` and `ratio a b` both accepted
            rule.denominator = toks[i];
            rule.name = rule.metric + "/" + rule.denominator;
            ok = parseThresholds(toks, i + 1, &rule);
        }
        else if (toks[0] == "gauge" && toks.size() >= 2)
        {
            rule.kind = SloRuleKind::GaugeBound;
            rule.metric = toks[1];
            rule.name = rule.metric;
            ok = parseThresholds(toks, 2, &rule);
        }

        if (!ok)
        {
            warn("slo: skipping malformed rule line: '", line, "'");
            ++errors;
            continue;
        }
        rules.push_back(std::move(rule));
    }
    if (n_errors)
        *n_errors = errors;
    return rules;
}

std::string SloReport::summary() const
{
    std::ostringstream os;
    os << sloVerdictName(verdict);
    if (!rules.empty())
    {
        os << " (";
        for (size_t i = 0; i < rules.size(); ++i)
        {
            if (i)
                os << ", ";
            os << rules[i].name << "=" << formatNumber(rules[i].value);
            if (rules[i].verdict == SloVerdict::Breached)
                os << "!";
            else if (rules[i].verdict == SloVerdict::Degraded)
                os << "~";
            if (rules[i].anomaly)
                os << "?";
        }
        os << ")";
    }
    return os.str();
}

// --------------------------------------------------------------------------
// SloMonitor

SloMonitor::SloMonitor(MetricsRegistry &registry, std::vector<SloRule> rules,
                       SloMonitorConfig cfg)
    : registry_(registry), rules_(std::move(rules)), cfg_(cfg)
{
    baseline_ = registry_.snapshot(0);
    prev_ = baseline_;
    detectors_.reserve(rules_.size());
    for (size_t i = 0; i < rules_.size(); ++i)
        detectors_.emplace_back(cfg_.anomaly);
    Tracer *t = Tracer::current();
    prev_ns_ = t ? t->nowNs() : 0;
}

SloObservation SloMonitor::evaluate(const SloRule &rule,
                                    const RegistrySnapshot &window) const
{
    SloObservation obs;
    obs.name = rule.name;
    switch (rule.kind)
    {
    case SloRuleKind::HistogramPercentile:
    {
        const auto it = window.histograms.find(rule.metric);
        if (it != window.histograms.end())
        {
            obs.samples = it->second.count;
            obs.value = it->second.percentile(rule.percentile);
        }
        break;
    }
    case SloRuleKind::CounterRatio:
    {
        const auto num_it = window.counters.find(rule.metric);
        const auto den_it = window.counters.find(rule.denominator);
        const uint64_t num = num_it != window.counters.end() ? num_it->second : 0;
        const uint64_t den = den_it != window.counters.end() ? den_it->second : 0;
        obs.samples = num + den;
        // A window with sheds but zero renders must still breach:
        // evaluate against a denominator floor of 1 instead of
        // producing inf (JSON-hostile) or 0/0.
        obs.value = static_cast<double>(num) /
                    static_cast<double>(std::max<uint64_t>(den, 1));
        break;
    }
    case SloRuleKind::GaugeBound:
    {
        const auto it = window.gauges.find(rule.metric);
        if (it != window.gauges.end())
        {
            obs.samples = 1;
            obs.value = it->second;
        }
        break;
    }
    }

    // Insufficient data is Healthy, never a false breach. Gauges are
    // instantaneous (one sample by construction), so min_samples
    // applies to windowed rules only.
    const bool enough = rule.kind == SloRuleKind::GaugeBound
                            ? obs.samples >= 1
                            : obs.samples >= std::max<uint64_t>(1, cfg_.min_samples);
    if (enough)
    {
        if (obs.value > rule.fail)
            obs.verdict = SloVerdict::Breached;
        else if (rule.warn > 0 && obs.value > rule.warn)
            obs.verdict = SloVerdict::Degraded;
    }
    return obs;
}

SloReport SloMonitor::tick(double ts_s)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const RegistrySnapshot now = registry_.snapshot(ts_s);
    const RegistrySnapshot window = snapshotDiff(now, prev_);

    SloReport rep;
    rep.tick = ++ticks_;
    rep.ts_s = ts_s;
    rep.window_s = ts_s - prev_.ts_s;
    for (size_t i = 0; i < rules_.size(); ++i)
    {
        SloObservation obs = evaluate(rules_[i], window);
        // Feed the detector only when the window actually observed
        // the rule — empty windows would drag the EWMA baseline to
        // zero and turn the next real window into a fake anomaly.
        if (cfg_.detect_anomalies && obs.samples > 0)
        {
            const AnomalyResult a = detectors_[i].observe(obs.value);
            obs.anomaly = a.anomaly;
            obs.z = a.z;
            obs.shift = a.shift;
            if (obs.anomaly && obs.verdict == SloVerdict::Healthy)
                obs.verdict = SloVerdict::Degraded;
        }
        rep.verdict = worseVerdict(rep.verdict, obs.verdict);
        rep.rules.push_back(std::move(obs));
    }
    worst_ = worseVerdict(worst_, rep.verdict);

    if (cfg_.export_gauges)
    {
        registry_.gauge("slo.verdict").set(static_cast<double>(rep.verdict));
        for (const SloObservation &obs : rep.rules)
        {
            registry_.gauge("slo." + obs.name + ".verdict")
                .set(static_cast<double>(obs.verdict));
            registry_.gauge("slo." + obs.name + ".value").set(obs.value);
        }
    }

    Tracer *tracer = Tracer::current();
    const uint64_t now_ns = tracer ? tracer->nowNs() : 0;
    if (cfg_.trace_breaches && tracer && rep.verdict == SloVerdict::Breached)
        tracer->record("slo.breach", 0, std::min(prev_ns_, now_ns), now_ns);
    prev_ns_ = now_ns;
    prev_ = now;
    return rep;
}

SloReport SloMonitor::total(double ts_s) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const RegistrySnapshot window =
        snapshotDiff(registry_.snapshot(ts_s), baseline_);
    SloReport rep;
    rep.tick = 0;
    rep.ts_s = ts_s;
    rep.window_s = ts_s - baseline_.ts_s;
    for (const SloRule &rule : rules_)
    {
        SloObservation obs = evaluate(rule, window);
        rep.verdict = worseVerdict(rep.verdict, obs.verdict);
        rep.rules.push_back(std::move(obs));
    }
    return rep;
}

SloVerdict SloMonitor::worstVerdict() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return worst_;
}

int SloMonitor::ticks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ticks_;
}

} // namespace clm
