#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/logging.hpp"

namespace clm {

namespace {

uint64_t doubleBits(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double bitsDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** CAS-fold @p v into the double stored in @p slot via @p better. */
template <typename Better>
void atomicFoldDouble(std::atomic<uint64_t> &slot, double v, Better better)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (better(v, bitsDouble(cur)) &&
           !slot.compare_exchange_weak(cur, doubleBits(v),
                                       std::memory_order_relaxed))
    {}
}

/** Minimal JSON string escape (metric names are plain identifiers,
 *  but don't trust that). */
void writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s)
    {
        switch (c)
        {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

/** JSON-safe finite double (JSON has no NaN/Inf literals). */
void writeJsonDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        os << 0;
    else
        os << v;
}

} // namespace

// --------------------------------------------------------------------------
// HistogramSnapshot

double HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 100.0);
    const uint64_t rank = std::max<uint64_t>(
        1,
        static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count))));
    uint64_t seen = 0;
    for (const auto &b : buckets)
    {
        seen += b.second;
        if (seen >= rank)
            return b.first;
    }
    return buckets.empty() ? 0.0 : buckets.back().first;
}

HistogramSnapshot HistogramSnapshot::delta(const HistogramSnapshot &prev) const
{
    HistogramSnapshot d;
    d.count = count >= prev.count ? count - prev.count : 0;
    d.sum = sum - prev.sum;
    d.min = min;    // cumulative (see header)
    d.max = max;
    // Key subtraction on geometry bucket index — edges move for the
    // overflow bucket (its edge is the running max).
    std::map<uint32_t, uint64_t> prev_by_index;
    for (size_t i = 0; i < prev.buckets.size(); ++i)
    {
        const uint32_t idx =
            i < prev.bucket_index.size() ? prev.bucket_index[i]
                                         : static_cast<uint32_t>(i);
        prev_by_index[idx] = prev.buckets[i].second;
    }
    for (size_t i = 0; i < buckets.size(); ++i)
    {
        const uint32_t idx = i < bucket_index.size()
                                 ? bucket_index[i]
                                 : static_cast<uint32_t>(i);
        uint64_t c = buckets[i].second;
        const auto it = prev_by_index.find(idx);
        if (it != prev_by_index.end())
            c = c >= it->second ? c - it->second : 0;
        if (c != 0)
        {
            d.buckets.emplace_back(buckets[i].first, c);
            d.bucket_index.push_back(idx);
        }
    }
    d.p50 = d.percentile(50);
    d.p90 = d.percentile(90);
    d.p99 = d.percentile(99);
    return d;
}

// --------------------------------------------------------------------------
// Gauge

void Gauge::set(double v)
{
    bits_.store(doubleBits(v), std::memory_order_relaxed);
}

double Gauge::value() const
{
    return bitsDouble(bits_.load(std::memory_order_relaxed));
}

// --------------------------------------------------------------------------
// Histogram

Histogram::Histogram(double lo, double hi, int per_octave)
{
    if (!(lo > 0))
        lo = 1e-6;
    if (!(hi > lo))
        hi = lo * 2;
    per_octave = std::max(1, per_octave);
    lo_ = lo;
    hi_ = hi;
    per_octave_ = per_octave;

    // Edge i caps bucket i: bucket 0 is (-inf, lo], then log-spaced
    // sub-octave buckets up to the first edge >= hi; one extra
    // unbounded overflow bucket follows the last edge. Edges are
    // computed as lo * 2^(i/k) from integer i, NOT by repeated
    // multiplication, so every instance with the same (lo, hi, k) has
    // bitwise-identical edges.
    edges_.push_back(lo);
    for (int i = 1;; ++i)
    {
        const double edge = lo * std::exp2(static_cast<double>(i) / per_octave);
        edges_.push_back(edge);
        if (edge >= hi)
            break;
        CLM_ASSERT(edges_.size() < (1u << 16), "histogram bucket explosion");
    }
    n_buckets_ = edges_.size() + 1;
    buckets_ = std::make_unique<std::atomic<uint64_t>[]>(n_buckets_);
    for (size_t i = 0; i < n_buckets_; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    min_bits_.store(doubleBits(std::numeric_limits<double>::infinity()),
                    std::memory_order_relaxed);
    max_bits_.store(doubleBits(-std::numeric_limits<double>::infinity()),
                    std::memory_order_relaxed);
}

size_t Histogram::bucketIndex(double v) const
{
    // First edge >= v caps v's bucket; past the last edge -> overflow.
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    return static_cast<size_t>(it - edges_.begin());
}

void Histogram::record(double v)
{
    if (std::isnan(v))
    {
        nan_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Fixed-point accumulation: integer adds commute, so sum() is
    // independent of thread interleaving (a double accumulator is not).
    const double clamped =
        std::min(std::max(v, -1e12), 1e12);    // keep micro units in range
    sum_micro_.fetch_add(static_cast<int64_t>(std::llround(clamped * 1e6)),
                         std::memory_order_relaxed);
    atomicFoldDouble(min_bits_, v, [](double a, double b) { return a < b; });
    atomicFoldDouble(max_bits_, v, [](double a, double b) { return a > b; });
}

bool Histogram::sameGeometry(const Histogram &other) const
{
    return matchesGeometry(other.lo_, other.hi_, other.per_octave_);
}

bool Histogram::matchesGeometry(double lo, double hi, int per_octave) const
{
    // Mirror the constructor's argument clamping so matchesGeometry(a,
    // b, c) agrees with sameGeometry(Histogram(a, b, c)).
    if (!(lo > 0))
        lo = 1e-6;
    if (!(hi > lo))
        hi = lo * 2;
    per_octave = std::max(1, per_octave);
    return lo_ == lo && hi_ == hi && per_octave_ == per_octave;
}

void Histogram::merge(const Histogram &other)
{
    CLM_ASSERT(sameGeometry(other), "histogram merge geometry mismatch");
    for (size_t i = 0; i < n_buckets_; ++i)
        buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    nan_dropped_.fetch_add(other.nan_dropped_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    sum_micro_.fetch_add(other.sum_micro_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    atomicFoldDouble(min_bits_, other.min(),
                     [](double a, double b) { return a < b; });
    atomicFoldDouble(max_bits_, other.max(),
                     [](double a, double b) { return a > b; });
}

double Histogram::sum() const
{
    return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) *
           1e-6;
}

double Histogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const
{
    const double v = bitsDouble(min_bits_.load(std::memory_order_relaxed));
    return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const
{
    const double v = bitsDouble(max_bits_.load(std::memory_order_relaxed));
    return std::isinf(v) ? 0.0 : v;
}

double Histogram::bucketUpperEdge(size_t i) const
{
    CLM_ASSERT(i < n_buckets_, "bucket index out of range");
    // The overflow bucket has no static upper edge; report the exact
    // max observed so percentile() never invents a value larger than
    // anything recorded.
    return i < edges_.size() ? edges_[i] : max();
}

double Histogram::percentile(double p) const
{
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 100.0);
    // Rank of the p-th percentile in the sorted multiset (nearest-rank
    // definition, matching EmpiricalCdf): ceil(p/100 * n), >= 1.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n))));
    uint64_t seen = 0;
    for (size_t i = 0; i < n_buckets_; ++i)
    {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen >= rank)
            return bucketUpperEdge(i);
    }
    return bucketUpperEdge(n_buckets_ - 1);
}

HistogramSnapshot Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.count = count();
    s.sum = sum();
    s.min = min();
    s.max = max();
    s.p50 = percentile(50);
    s.p90 = percentile(90);
    s.p99 = percentile(99);
    for (size_t i = 0; i < n_buckets_; ++i)
    {
        const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
        if (c != 0)
        {
            s.buckets.emplace_back(bucketUpperEdge(i), c);
            s.bucket_index.push_back(static_cast<uint32_t>(i));
        }
    }
    return s;
}

// --------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry &MetricsRegistry::global()
{
    static MetricsRegistry instance;
    return instance;
}

Counter &MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &MetricsRegistry::histogram(const std::string &name, double lo,
                                      double hi, int per_octave)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(lo, hi, per_octave);
    else
        CLM_ASSERT(slot->matchesGeometry(lo, hi, per_octave),
                   "histogram '", name, "' re-registered with different geometry");
    return *slot;
}

void MetricsRegistry::writeJsonLine(std::ostream &os, double ts_s) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"ts_s\": ";
    writeJsonDouble(os, ts_s);
    os << ", \"counters\": {";
    bool first = true;
    for (const auto &kv : counters_)
    {
        if (!first)
            os << ", ";
        first = false;
        writeJsonString(os, kv.first);
        os << ": " << kv.second->value();
    }
    os << "}, \"gauges\": {";
    first = true;
    for (const auto &kv : gauges_)
    {
        if (!first)
            os << ", ";
        first = false;
        writeJsonString(os, kv.first);
        os << ": ";
        writeJsonDouble(os, kv.second->value());
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &kv : histograms_)
    {
        if (!first)
            os << ", ";
        first = false;
        const HistogramSnapshot s = kv.second->snapshot();
        writeJsonString(os, kv.first);
        os << ": {\"count\": " << s.count << ", \"mean\": ";
        writeJsonDouble(os, s.count ? s.sum / static_cast<double>(s.count) : 0);
        os << ", \"min\": ";
        writeJsonDouble(os, s.min);
        os << ", \"max\": ";
        writeJsonDouble(os, s.max);
        os << ", \"p50\": ";
        writeJsonDouble(os, s.p50);
        os << ", \"p90\": ";
        writeJsonDouble(os, s.p90);
        os << ", \"p99\": ";
        writeJsonDouble(os, s.p99);
        os << ", \"buckets\": [";
        for (size_t i = 0; i < s.buckets.size(); ++i)
        {
            if (i)
                os << ", ";
            os << '[';
            writeJsonDouble(os, s.buckets[i].first);
            os << ", " << s.buckets[i].second << ']';
        }
        os << "]}";
    }
    os << "}}\n";
}

RegistrySnapshot MetricsRegistry::snapshot(double ts_s) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RegistrySnapshot s;
    s.ts_s = ts_s;
    for (const auto &kv : counters_)
        s.counters[kv.first] = kv.second->value();
    for (const auto &kv : gauges_)
        s.gauges[kv.first] = kv.second->value();
    for (const auto &kv : histograms_)
        s.histograms[kv.first] = kv.second->snapshot();
    return s;
}

RegistrySnapshot snapshotDiff(const RegistrySnapshot &now,
                              const RegistrySnapshot &prev)
{
    RegistrySnapshot d = now;
    for (auto &kv : d.counters)
    {
        const auto it = prev.counters.find(kv.first);
        if (it != prev.counters.end())
            kv.second = kv.second >= it->second ? kv.second - it->second : 0;
    }
    // Gauges stay instantaneous: a last-write-wins value has no
    // meaningful difference over a window.
    for (auto &kv : d.histograms)
    {
        const auto it = prev.histograms.find(kv.first);
        if (it != prev.histograms.end())
            kv.second = kv.second.delta(it->second);
    }
    return d;
}

RegistrySnapshot MetricsRegistry::snapshotDelta(const RegistrySnapshot &prev,
                                                double ts_s) const
{
    return snapshotDiff(snapshot(ts_s), prev);
}

std::vector<std::string> MetricsRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (const auto &kv : counters_)
        out.push_back(kv.first);
    for (const auto &kv : gauges_)
        out.push_back(kv.first);
    for (const auto &kv : histograms_)
        out.push_back(kv.first);
    std::sort(out.begin(), out.end());
    return out;
}

// --------------------------------------------------------------------------
// MetricsExporter

MetricsExporter::MetricsExporter(const MetricsRegistry &registry,
                                 std::string path, double period_ms)
    : registry_(registry),
      out_(path),
      period_ms_(std::max(1.0, period_ms)),
      epoch_(std::chrono::steady_clock::now())
{
    if (!out_)
        warn("metrics exporter: cannot open '", path, "'");
    thread_ = std::thread([this] { loop(); });
}

MetricsExporter::~MetricsExporter()
{
    stop();
}

void MetricsExporter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
    }
}

void MetricsExporter::setTickHook(std::function<void(double)> hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tick_hook_ = std::move(hook);
}

void MetricsExporter::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;)
    {
        const bool stop_now = cv_.wait_for(
            lock,
            std::chrono::microseconds(static_cast<int64_t>(period_ms_ * 1e3)),
            [this] { return stopping_; });
        const double ts_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          epoch_)
                .count();
        // Tick (e.g. the SLO monitor) BEFORE writing so gauges the
        // hook sets land in this very line — including the final line
        // stop() forces out mid-interval.
        if (tick_hook_)
            tick_hook_(ts_s);
        if (out_)
        {
            registry_.writeJsonLine(out_, ts_s);
            out_.flush();
            snapshots_.fetch_add(1, std::memory_order_relaxed);
        }
        if (stop_now)
            return;    // final line just written above
    }
}

} // namespace clm
