#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "util/logging.hpp"

namespace clm {

namespace {

// Thread-local trace context. The ring pointer is per (thread, tracer);
// t_ring_tracer holds the owning tracer's process-unique id_, NOT its
// address — a fresh Tracer constructed at a destroyed one's recycled
// address (stack-local tracers in back-to-back tests) would pass a
// pointer-equality check and write into the freed ring.
thread_local uint64_t t_trace_id = 0;
thread_local uint32_t t_depth = 0;

} // namespace

std::atomic<Tracer *> Tracer::g_enabled_{nullptr};

namespace {
thread_local void *t_ring = nullptr;
thread_local uint64_t t_ring_tracer = 0;    //!< Tracer::id_, 0 = none.
std::atomic<uint64_t> g_next_tracer_id{1};
} // namespace

Tracer::Tracer(size_t ring_capacity)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      ring_capacity_(std::max<size_t>(1, ring_capacity)),
      epoch_(std::chrono::steady_clock::now())
{
}

Tracer::~Tracer()
{
    // A tracer must not be destroyed while it is the live target —
    // instrumented threads hold cached ring pointers into it.
    CLM_ASSERT(current() != this, "destroying the enabled tracer");
}

Tracer &Tracer::global()
{
    static Tracer instance;
    return instance;
}

void Tracer::enable(Tracer *t)
{
    g_enabled_.store(t, std::memory_order_release);
}

uint64_t Tracer::nowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

Tracer::Ring *Tracer::threadRing()
{
    if (t_ring_tracer == id_)
        return static_cast<Ring *>(t_ring);
    // First record from this thread into this tracer: register a ring
    // under the mutex (once per thread per tracer), then cache it.
    // Rings are never freed before the tracer, so the cached pointer
    // stays valid across clear().
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(std::make_unique<Ring>());
    Ring *ring = rings_.back().get();
    ring->spans.resize(ring_capacity_);
    ring->tid = static_cast<uint32_t>(rings_.size());
    t_ring = ring;
    t_ring_tracer = id_;
    return ring;
}

void Tracer::record(const char *name, uint64_t trace_id, uint64_t t0_ns,
                    uint64_t t1_ns, uint32_t depth, SpanKind kind)
{
    Ring *ring = threadRing();
    SpanRecord &slot = ring->spans[ring->next];
    slot.name = name;
    slot.trace_id = trace_id;
    slot.t0_ns = t0_ns;
    slot.t1_ns = t1_ns;
    slot.tid = ring->tid;
    slot.depth = depth;
    slot.kind = kind;
    ring->next = ring->next + 1 == ring->spans.size() ? 0 : ring->next + 1;
    ring->total++;
}

void Tracer::clear()
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (auto &ring : rings_)
    {
        ring->next = 0;
        ring->total = 0;
    }
}

TraceStats Tracer::stats() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    TraceStats s;
    s.threads = rings_.size();
    for (const auto &ring : rings_)
    {
        const uint64_t held = std::min<uint64_t>(ring->total,
                                                 ring->spans.size());
        s.recorded += held;
        s.dropped += ring->total - held;
    }
    return s;
}

std::vector<SpanRecord> Tracer::snapshotSpans() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    std::vector<SpanRecord> out;
    for (const auto &ring : rings_)
    {
        const size_t cap = ring->spans.size();
        const size_t held = static_cast<size_t>(
            std::min<uint64_t>(ring->total, cap));
        // Oldest-first: when the ring has wrapped, the oldest live
        // span sits at `next` (the slot about to be overwritten).
        const size_t start = ring->total > cap ? ring->next : 0;
        for (size_t i = 0; i < held; ++i)
            out.push_back(ring->spans[(start + i) % cap]);
    }
    return out;
}

namespace {

/** Escape a span name for JSON (names are literals, but be safe). */
void writeJsonName(std::ostream &os, const char *s)
{
    os << '"';
    for (; *s; ++s)
    {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << (static_cast<unsigned char>(*s) < 0x20 ? ' ' : *s);
    }
    os << '"';
}

/** Microseconds with fixed 3-decimal precision, no locale surprises. */
void writeMicros(std::ostream &os, uint64_t ns)
{
    os << ns / 1000 << '.';
    const uint64_t frac = ns % 1000;
    os << static_cast<char>('0' + frac / 100)
       << static_cast<char>('0' + frac / 10 % 10)
       << static_cast<char>('0' + frac % 10);
}

} // namespace

void Tracer::writeChromeTrace(std::ostream &os) const
{
    const std::vector<SpanRecord> spans = snapshotSpans();
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const SpanRecord &s : spans)
    {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\": ";
        writeJsonName(os, s.name);
        if (s.kind == SpanKind::Thread)
        {
            // Complete event on the recording thread's track.
            os << ", \"ph\": \"X\", \"pid\": 1, \"tid\": " << s.tid
               << ", \"ts\": ";
            writeMicros(os, s.t0_ns);
            os << ", \"dur\": ";
            writeMicros(os, s.t1_ns >= s.t0_ns ? s.t1_ns - s.t0_ns : 0);
            os << ", \"args\": {\"trace\": " << s.trace_id
               << ", \"depth\": " << s.depth << "}}";
        }
        else
        {
            // Async pair keyed by trace id: begins on one thread, ends
            // on another, so it cannot be an "X" (would corrupt the
            // per-thread duration stack in the viewer).
            os << ", \"cat\": \"request\", \"ph\": \"b\", \"pid\": 1, "
                  "\"tid\": "
               << s.tid << ", \"id\": " << s.trace_id << ", \"ts\": ";
            writeMicros(os, s.t0_ns);
            os << "},\n{\"name\": ";
            writeJsonName(os, s.name);
            os << ", \"cat\": \"request\", \"ph\": \"e\", \"pid\": 1, "
                  "\"tid\": "
               << s.tid << ", \"id\": " << s.trace_id << ", \"ts\": ";
            writeMicros(os, s.t1_ns);
            os << "}";
        }
    }
    os << "\n]}\n";
}

bool Tracer::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
    {
        warn("tracer: cannot open trace output '", path, "'");
        return false;
    }
    writeChromeTrace(out);
    return static_cast<bool>(out);
}

// --------------------------------------------------------------------------
// Thread-local context helpers

uint64_t currentTraceId()
{
    return t_trace_id;
}

TraceContext::TraceContext(uint64_t id) : saved_(t_trace_id)
{
    t_trace_id = id;
}

TraceContext::~TraceContext()
{
    t_trace_id = saved_;
}

ScopedSpan::ScopedSpan(const char *name)
    : ScopedSpan(name, t_trace_id)
{
}

ScopedSpan::ScopedSpan(const char *name, uint64_t trace_id)
    : name_(name), trace_id_(trace_id), tracer_(Tracer::current())
{
    if (!tracer_)
        return;
    t0_ns_ = tracer_->nowNs();
    depth_ = t_depth++;
}

ScopedSpan::~ScopedSpan()
{
    if (!tracer_)
        return;
    --t_depth;
    // Record against the tracer captured at ctor — if it was swapped
    // mid-scope (tests), this span still lands in a consistent ring
    // with a start time from the same epoch.
    tracer_->record(name_, trace_id_, t0_ns_, tracer_->nowNs(), depth_,
                    SpanKind::Thread);
}

StageClock::StageClock()
    : tracer_(Tracer::current()), last_(std::chrono::steady_clock::now())
{
    if (tracer_)
        last_ns_ = tracer_->nowNs();
}

double StageClock::lap(const char *name)
{
    if (tracer_)
    {
        const uint64_t now_ns = tracer_->nowNs();
        tracer_->record(name, t_trace_id, last_ns_, now_ns, t_depth,
                        SpanKind::Thread);
        const double secs = static_cast<double>(now_ns - last_ns_) * 1e-9;
        last_ns_ = now_ns;
        return secs;
    }
    const auto now = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    return secs;
}

std::string traceEnvPath()
{
    const char *v = std::getenv("CLM_TRACE");
    return v ? std::string(v) : std::string();
}

} // namespace clm
