#include "obs/anomaly.hpp"

#include <algorithm>
#include <cmath>

namespace clm {

// --------------------------------------------------------------------------
// EwmaDetector

EwmaDetector::EwmaDetector(const EwmaConfig &cfg)
    : cfg_(cfg)
{
    cfg_.alpha = std::min(std::max(cfg_.alpha, 1e-3), 1.0);
    cfg_.z_threshold = std::max(0.1, cfg_.z_threshold);
    cfg_.warmup = std::max(1, cfg_.warmup);
}

bool EwmaDetector::observe(double x)
{
    if (std::isnan(x))
        return false;
    bool anomalous = false;
    if (n_ == 0)
    {
        mean_ = x;
        var_ = 0;
        last_z_ = 0;
    }
    else
    {
        // Judge against the PRE-update state, then fold x in. The
        // epsilon keeps a constant sequence (variance 0) from turning
        // every later deviation into an infinite z-score.
        const double diff = x - mean_;
        const double denom = std::sqrt(var_) +
                             1e-9 * std::max(1.0, std::fabs(mean_));
        last_z_ = diff / denom;
        anomalous = n_ >= cfg_.warmup && std::fabs(last_z_) > cfg_.z_threshold;
        mean_ += cfg_.alpha * diff;
        var_ = (1.0 - cfg_.alpha) * (var_ + cfg_.alpha * diff * diff);
    }
    ++n_;
    return anomalous;
}

void EwmaDetector::reset()
{
    mean_ = var_ = last_z_ = 0;
    n_ = 0;
}

// --------------------------------------------------------------------------
// StepChangeDetector

StepChangeDetector::StepChangeDetector(const StepChangeConfig &cfg)
    : cfg_(cfg)
{
    cfg_.window = std::max(2, cfg_.window);
    cfg_.rel_threshold = std::max(1e-3, cfg_.rel_threshold);
    ring_.assign(static_cast<size_t>(2 * cfg_.window), 0.0);
}

bool StepChangeDetector::observe(double x)
{
    if (std::isnan(x))
        return false;
    const int w = cfg_.window;
    ring_[static_cast<size_t>(n_ % (2 * w))] = x;
    ++n_;
    last_shift_ = 0;
    if (n_ < 2 * w)
        return false;
    // The ring holds exactly the last 2W samples; oldest-first order
    // starts at n_ % 2W. First W of those are the "old" half.
    double old_sum = 0, new_sum = 0;
    for (int i = 0; i < 2 * w; ++i)
    {
        const double v = ring_[static_cast<size_t>((n_ + i) % (2 * w))];
        (i < w ? old_sum : new_sum) += v;
    }
    const double old_mean = old_sum / w;
    const double new_mean = new_sum / w;
    if (std::fabs(new_mean - old_mean) < cfg_.abs_floor)
        return false;
    const double base = std::max(std::fabs(old_mean), cfg_.abs_floor);
    last_shift_ = (new_mean - old_mean) / base;
    return std::fabs(last_shift_) > cfg_.rel_threshold;
}

void StepChangeDetector::reset()
{
    std::fill(ring_.begin(), ring_.end(), 0.0);
    n_ = 0;
    last_shift_ = 0;
}

// --------------------------------------------------------------------------
// AnomalyDetector

AnomalyDetector::AnomalyDetector(const AnomalyConfig &cfg)
    : ewma_(cfg.ewma), step_(cfg.step)
{
}

AnomalyResult AnomalyDetector::observe(double x)
{
    AnomalyResult r;
    r.ewma = ewma_.observe(x);
    r.step = step_.observe(x);
    r.z = ewma_.lastZ();
    r.shift = step_.lastShift();
    r.anomaly = r.ewma || r.step;
    return r;
}

void AnomalyDetector::reset()
{
    ewma_.reset();
    step_.reset();
}

} // namespace clm
