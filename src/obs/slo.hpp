/**
 * @file
 * Declarative SLO rules evaluated over the PR-9 metrics registry —
 * the layer that WATCHES the observability spine instead of leaving
 * breaches to be eyeballed out of BENCH JSONs.
 *
 * A rule bounds one derived value:
 *  - HistogramPercentile: `hist serve.latency_ms p99 warn 10 fail 50`
 *    — the windowed p-th percentile of a histogram.
 *  - CounterRatio: `ratio serve.shed_deadline / serve.requests
 *    warn 0.1 fail 0.5` — windowed numerator delta over windowed
 *    denominator delta (denominator 0 is evaluated as 1, so a window
 *    with sheds but no renders still breaches).
 *  - GaugeBound: `gauge serve.queue_depth fail 64` — the gauge's
 *    instantaneous value.
 *
 * Verdict per rule: value > fail => Breached, value > warn =>
 * Degraded (warn <= 0 disables the Degraded band), else Healthy; a
 * window with fewer than min_samples observations is Healthy
 * (insufficient data, never a false breach). The report's verdict is
 * the worst rule verdict. An anomaly flagged by the obs/anomaly
 * detectors on an otherwise-Healthy rule escalates it to Degraded —
 * anomalies are "unusual", only threshold crossings are "broken".
 *
 * SloMonitor::tick(ts) evaluates one WINDOW: the registry
 * snapshotDelta since the previous tick (deterministic given the
 * multiset of samples recorded in the window — the PR-9 histogram
 * determinism carries through the delta). total() evaluates the
 * cumulative window since construction — what the benches embed.
 * Breached windows are recorded as "slo.breach" spans into the live
 * tracer, so a Chrome trace shows WHEN the service was out of SLO
 * alongside what it was doing. When export_gauges is on, each tick
 * writes slo.verdict / slo.<rule>.verdict / slo.<rule>.value gauges
 * back into the registry, so metrics.jsonl carries the verdict
 * stream with zero extra plumbing (the MetricsExporter tick hook
 * orders the tick before the line write).
 */

#ifndef CLM_OBS_SLO_HPP
#define CLM_OBS_SLO_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/metrics.hpp"

namespace clm {

/** Health of one rule or one whole report. Order matters: higher is
 *  worse, so std::max composes verdicts. */
enum class SloVerdict : int
{
    Healthy = 0,
    Degraded = 1,
    Breached = 2,
};

/** "healthy" / "degraded" / "breached". */
const char *sloVerdictName(SloVerdict v);

inline SloVerdict worseVerdict(SloVerdict a, SloVerdict b)
{ return static_cast<int>(a) >= static_cast<int>(b) ? a : b; }

enum class SloRuleKind : int
{
    HistogramPercentile,
    CounterRatio,
    GaugeBound,
};

/** One declarative bound (see file comment for grammar). */
struct SloRule
{
    SloRuleKind kind = SloRuleKind::HistogramPercentile;
    std::string name;           //!< Export/display name (parser derives).
    std::string metric;         //!< Histogram, numerator counter, or gauge.
    std::string denominator;    //!< CounterRatio only.
    double percentile = 99;     //!< HistogramPercentile only.
    double warn = 0;            //!< Degraded above this; <= 0 disables.
    double fail = 0;            //!< Breached above this.
};

/** Canonical one-line spec text for @p r (round-trips the parser). */
std::string formatSloRule(const SloRule &r);

/**
 * Parse rule-spec text: one rule per line (';' also separates), '#'
 * starts a comment, blank lines skipped. Grammar per line:
 *
 *   hist  <metric> p<P>           [warn <W>] fail <F>
 *   ratio <num> [/] <den>         [warn <W>] fail <F>
 *   gauge <metric>                [warn <W>] fail <F>
 *
 * Malformed lines are warned about and skipped (util/env policy:
 * never UB, never abort on config garbage); @p n_errors (optional)
 * receives the skip count.
 */
std::vector<SloRule> parseSloRules(const std::string &text,
                                   int *n_errors = nullptr);

/** One rule's evaluation over one window. */
struct SloObservation
{
    std::string name;        //!< Rule name.
    double value = 0;        //!< The bounded derived value.
    uint64_t samples = 0;    //!< Observations backing it this window.
    SloVerdict verdict = SloVerdict::Healthy;
    bool anomaly = false;    //!< A streaming detector fired.
    double z = 0;            //!< EWMA z-score of this window's value.
    double shift = 0;        //!< Two-window relative mean shift.
};

/** One windowed evaluation of every rule. */
struct SloReport
{
    int tick = 0;            //!< 0 for total(); 1.. for tick().
    double ts_s = 0;
    double window_s = 0;     //!< ts_s - previous tick's ts_s.
    SloVerdict verdict = SloVerdict::Healthy;
    std::vector<SloObservation> rules;

    /** One human line: "verdict (rule=value ...)" — what clm_cli
     *  serve prints live and finally. */
    std::string summary() const;
};

struct SloMonitorConfig
{
    /** Write slo.verdict / slo.<rule>.verdict / slo.<rule>.value
     *  gauges into the registry on every tick. */
    bool export_gauges = true;
    /** Record a "slo.breach" span over each Breached window into the
     *  live tracer (no-op when tracing is off). */
    bool trace_breaches = true;
    /** Feed each rule's windowed value through an AnomalyDetector;
     *  anomalies escalate Healthy windows to Degraded. */
    bool detect_anomalies = true;
    /** Windows with fewer backing samples than this report Healthy
     *  (insufficient data). */
    uint64_t min_samples = 1;
    AnomalyConfig anomaly;
};

/**
 * Evaluates a rule set over a registry at explicit ticks (see file
 * comment). Construction snapshots the registry as the baseline;
 * tick() windows against the previous tick; total() windows against
 * the baseline. Thread-safe: tick() is typically driven from the
 * MetricsExporter writer thread while the owner reads worstVerdict().
 */
class SloMonitor
{
  public:
    SloMonitor(MetricsRegistry &registry, std::vector<SloRule> rules,
               SloMonitorConfig cfg = SloMonitorConfig{});

    /** Evaluate the window since the previous tick (or construction)
     *  stamped @p ts_s. */
    SloReport tick(double ts_s);

    /** Evaluate the cumulative window since construction. Does not
     *  advance tick state, feed detectors, export gauges, or record
     *  breach spans — a pure read. */
    SloReport total(double ts_s = 0) const;

    /** Worst verdict any tick() has produced (Healthy before the
     *  first tick). total() does not fold in. */
    SloVerdict worstVerdict() const;

    int ticks() const;
    const std::vector<SloRule> &rules() const { return rules_; }

  private:
    SloObservation evaluate(const SloRule &rule,
                            const RegistrySnapshot &window) const;

    MetricsRegistry &registry_;
    std::vector<SloRule> rules_;
    SloMonitorConfig cfg_;

    mutable std::mutex mutex_;
    RegistrySnapshot baseline_;    //!< At construction.
    RegistrySnapshot prev_;        //!< At the last tick.
    uint64_t prev_ns_ = 0;         //!< Tracer clock at the last tick.
    std::vector<AnomalyDetector> detectors_;    //!< One per rule.
    int ticks_ = 0;
    SloVerdict worst_ = SloVerdict::Healthy;
};

} // namespace clm

#endif // CLM_OBS_SLO_HPP
