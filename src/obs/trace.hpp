/**
 * @file
 * Span-based request tracer. A request gets a trace ID when
 * RenderService::submit mints one; every stage it passes through
 * (admission, queue wait, worker dequeue, shard routing, fused
 * pipeline stages, k-way merge, compositing — plus the training-side
 * forward/loss/backward/adam/publish) records a span into a per-thread
 * fixed-capacity ring buffer. There are NO locks on the recording
 * path: each thread owns its ring, registered once under a mutex and
 * cached in a thread_local pointer; when a ring wraps, the oldest
 * spans are overwritten and counted as dropped.
 *
 * Toggling: the tracer is OFF by default. Tracer::enabled() is one
 * relaxed atomic load — the entire cost of the layer when disabled —
 * so instrumentation stays compiled into release hot paths. Tracing
 * only reads clocks and writes ring slots; it never changes any
 * arithmetic, ordering, or allocation the traced code performs, which
 * is why every bitwise-identity invariant holds with tracing on
 * (asserted in tests/test_obs.cpp and bench/micro_serve.cpp).
 *
 * Export: writeChromeTrace() emits Chrome trace-event JSON
 * (chrome://tracing, Perfetto). Thread-scoped spans become "X"
 * complete events on their thread's track; request-lifetime spans that
 * START on one thread and END on another (queue wait: enqueued by the
 * client, dequeued by a worker) become "b"/"e" async event pairs keyed
 * by trace ID, which the viewers render as a separate async track —
 * emitting those as "X" would corrupt per-thread stack nesting.
 *
 * enable(toggle)/clear() require quiescence: no thread may be
 * recording concurrently (call before starting / after joining the
 * workload threads).
 */

#ifndef CLM_OBS_TRACE_HPP
#define CLM_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace clm {

class MetricsRegistry;

/** How a span is exported (see file comment). */
enum class SpanKind : uint8_t {
    Thread,    //!< Begins and ends on one thread ("X" complete event).
    Async,     //!< Crosses threads; keyed by trace ID ("b"/"e" pair).
};

/** One recorded span. `name` must be a string literal (or otherwise
 *  outlive the tracer) — rings store the pointer, never a copy. */
struct SpanRecord
{
    const char *name = nullptr;
    uint64_t trace_id = 0;    //!< 0 = not request-scoped (e.g. training).
    uint64_t t0_ns = 0;       //!< Nanoseconds since tracer epoch.
    uint64_t t1_ns = 0;
    uint32_t tid = 0;         //!< Recording thread (filled on snapshot).
    uint32_t depth = 0;       //!< Nesting depth on the recording thread.
    SpanKind kind = SpanKind::Thread;
};

/** Aggregate tracer health (recorded/dropped totals across rings). */
struct TraceStats
{
    uint64_t recorded = 0;    //!< Spans currently held in rings.
    uint64_t dropped = 0;     //!< Spans overwritten by ring wrap.
    uint64_t threads = 0;     //!< Rings (threads that ever recorded).
};

/**
 * The process-wide tracer (see file comment). All recording goes
 * through Tracer::global(); tests may construct private instances.
 */
class Tracer
{
  public:
    static constexpr size_t kDefaultRingCapacity = 1 << 14;

    explicit Tracer(size_t ring_capacity = kDefaultRingCapacity);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    static Tracer &global();

    /** Is the GLOBAL tracer recording? One relaxed load — the only
     *  cost instrumentation pays when tracing is off. */
    static bool enabled()
    { return g_enabled_.load(std::memory_order_relaxed) != nullptr; }

    /** Route ScopedSpan/StageClock recording to @p t (nullptr = off).
     *  Requires quiescence. Only one tracer can be live at a time. */
    static void enable(Tracer *t);

    /** The currently enabled tracer (nullptr when off). */
    static Tracer *current()
    { return g_enabled_.load(std::memory_order_relaxed); }

    /** Nanoseconds since this tracer's construction (monotonic). */
    uint64_t nowNs() const;

    /** Append a span to the calling thread's ring (lock-free after
     *  the thread's first record). */
    void record(const char *name, uint64_t trace_id, uint64_t t0_ns,
                uint64_t t1_ns, uint32_t depth = 0,
                SpanKind kind = SpanKind::Thread);

    /** Drop all recorded spans (indices reset; rings stay allocated
     *  and registered). Requires quiescence. */
    void clear();

    TraceStats stats() const;

    /** Every live span, oldest-first per ring, tagged with its ring's
     *  thread id. Requires quiescence. */
    std::vector<SpanRecord> snapshotSpans() const;

    /** Chrome trace-event JSON (see file comment). Requires
     *  quiescence. */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace to @p path; returns false if unwritable. */
    bool writeChromeTraceFile(const std::string &path) const;

  private:
    struct Ring
    {
        std::vector<SpanRecord> spans;    //!< Fixed capacity, wraps.
        size_t next = 0;                  //!< Next write slot.
        uint64_t total = 0;               //!< Spans ever recorded.
        uint32_t tid = 0;                 //!< Stable per-tracer id.
    };

    Ring *threadRing();

    static std::atomic<Tracer *> g_enabled_;

    /** Process-unique, never reused. Thread-local ring caches key on
     *  this rather than the Tracer's address: a new tracer constructed
     *  at a recycled address (stack-local tracers in tests) must not
     *  alias a destroyed tracer's cached rings. */
    const uint64_t id_;
    size_t ring_capacity_;
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex rings_mutex_;    //!< Guards rings_ (not slots).
    std::vector<std::unique_ptr<Ring>> rings_;
};

/** The calling thread's active trace ID (0 outside TraceContext). */
uint64_t currentTraceId();

/**
 * Scopes the thread-local trace ID: spans recorded inside inherit
 * @p id. Saves and restores the previous value, so nested request
 * handling (batch render inside worker loop) composes.
 */
class TraceContext
{
  public:
    explicit TraceContext(uint64_t id);
    ~TraceContext();

    TraceContext(const TraceContext &) = delete;
    TraceContext &operator=(const TraceContext &) = delete;

  private:
    uint64_t saved_;
};

/**
 * RAII thread-scoped span: records [ctor, dtor] under the current
 * trace ID at the thread's current nesting depth. Captures
 * enabled-at-construction so an enable() racing the scope cannot emit
 * a span with a garbage start time.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name);
    /** Same, but under an explicit trace ID instead of the ambient. */
    ScopedSpan(const char *name, uint64_t trace_id);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    uint64_t trace_id_ = 0;
    uint64_t t0_ns_ = 0;
    uint32_t depth_ = 0;
    Tracer *tracer_ = nullptr;    //!< Non-null only if live at ctor.
};

/**
 * Sequential stage stopwatch — the consolidation point for the old
 * `Timer stage_timer; ... seconds(); reset()` pattern (rasterizer /
 * batch / shard_batch stage timers) and sim/stage_timings. lap(name)
 * returns seconds since the previous lap (or construction) and, when
 * tracing is live, also records that interval as a span — one
 * mechanism feeding both the legacy stage_times structs and the
 * tracer.
 */
class StageClock
{
  public:
    StageClock();

    /** Seconds since the last lap; records a span named @p name over
     *  that interval when tracing is enabled. */
    double lap(const char *name);

  private:
    Tracer *tracer_;             //!< Live tracer at ctor (or null).
    uint64_t last_ns_ = 0;       //!< Tracer clock (when live).
    std::chrono::steady_clock::time_point last_;    //!< Fallback clock.
};

/** Value of the CLM_TRACE env var (a trace output path), or "" when
 *  unset/empty. Setting it makes clm_cli / the benches enable the
 *  global tracer and dump a Chrome trace there on exit. */
std::string traceEnvPath();

} // namespace clm

#endif // CLM_OBS_TRACE_HPP
