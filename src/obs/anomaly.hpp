/**
 * @file
 * Streaming anomaly detectors for metric observation sequences — the
 * "is this window unusual?" half of the self-watching layer (the SLO
 * rules in obs/slo.* are the "is this window out of bounds?" half).
 *
 * Determinism discipline (same as the PR-9 histograms): a detector is
 * a PURE function of the sequence of observe() calls — no clock reads,
 * no RNG, no thread-dependent state. The observation sequence itself
 * is produced by the SLO monitor from windowed registry snapshots,
 * whose values are merge-order- and interleaving-independent, so two
 * runs that record the same multiset of samples per window flag the
 * same anomalies. Tests assert repeated-run identity and
 * serial ≡ concurrent-recording identity (tests/test_slo.cpp).
 *
 * Two complementary rules:
 *  - EwmaDetector: exponentially weighted mean + variance; a sample
 *    whose z-score against the pre-update EWMA exceeds the threshold
 *    is anomalous. Catches spikes against a slowly moving baseline.
 *  - StepChangeDetector: compares the mean of the newest W samples
 *    against the mean of the W before them; a relative shift beyond
 *    the threshold is anomalous. Catches level shifts the EWMA would
 *    slowly absorb without ever producing one big z-score.
 */

#ifndef CLM_OBS_ANOMALY_HPP
#define CLM_OBS_ANOMALY_HPP

#include <cstddef>
#include <vector>

namespace clm {

/** EwmaDetector tuning. */
struct EwmaConfig
{
    double alpha = 0.3;        //!< EWMA smoothing (0, 1]; higher = faster.
    double z_threshold = 4.0;  //!< |z| above this flags an anomaly.
    int warmup = 5;            //!< Samples before any flagging.
};

/** EWMA mean/variance z-score detector (see file comment). */
class EwmaDetector
{
  public:
    explicit EwmaDetector(const EwmaConfig &cfg = EwmaConfig{});

    /** Fold @p x in; true when x is anomalous vs the PRE-update EWMA
     *  state (so the anomaly itself does not mask the comparison). */
    bool observe(double x);

    void reset();

    double mean() const { return mean_; }
    double variance() const { return var_; }
    /** z-score the LAST observe() was judged at (0 during warmup). */
    double lastZ() const { return last_z_; }
    int samples() const { return n_; }

  private:
    EwmaConfig cfg_;
    double mean_ = 0;
    double var_ = 0;
    double last_z_ = 0;
    int n_ = 0;
};

/** StepChangeDetector tuning. */
struct StepChangeConfig
{
    int window = 8;              //!< W: samples per compared half.
    double rel_threshold = 0.5;  //!< |new/old - 1| above this flags.
    double abs_floor = 1e-9;     //!< Shifts below this are ignored.
};

/** Two-window mean-shift detector (see file comment). */
class StepChangeDetector
{
  public:
    explicit StepChangeDetector(const StepChangeConfig &cfg = StepChangeConfig{});

    /** Fold @p x in; true when the newest-W vs previous-W mean shift
     *  exceeds the relative threshold (needs 2W samples). */
    bool observe(double x);

    void reset();

    /** Relative shift the LAST observe() was judged at. */
    double lastShift() const { return last_shift_; }
    int samples() const { return n_; }

  private:
    StepChangeConfig cfg_;
    std::vector<double> ring_;    //!< Last 2W samples, ring-indexed.
    int n_ = 0;
    double last_shift_ = 0;
};

/** Combined detector configuration. */
struct AnomalyConfig
{
    EwmaConfig ewma;
    StepChangeConfig step;
};

/** Verdict of one combined observation. */
struct AnomalyResult
{
    bool anomaly = false;    //!< Either rule fired.
    bool ewma = false;       //!< EWMA z-score rule fired.
    bool step = false;       //!< Step-change rule fired.
    double z = 0;            //!< z-score of this observation.
    double shift = 0;        //!< Relative two-window mean shift.
};

/** EWMA + step-change over one observation stream. */
class AnomalyDetector
{
  public:
    explicit AnomalyDetector(const AnomalyConfig &cfg = AnomalyConfig{});

    AnomalyResult observe(double x);
    void reset();
    int samples() const { return ewma_.samples(); }

  private:
    EwmaDetector ewma_;
    StepChangeDetector step_;
};

} // namespace clm

#endif // CLM_OBS_ANOMALY_HPP
