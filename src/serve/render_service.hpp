/**
 * @file
 * RenderService — the concurrent serving subsystem. Clients submit
 * ViewRequests (a posed camera) and get back a rendered frame of the
 * *live* training model. Requests land on a thread-safe queue; worker
 * threads drain it in batches of up to max_batch and render each batch
 * through the fused multi-view pipeline (render/batch.hpp): one shared
 * cull/precompute/binning pass, per-view tile ranges carved out of one
 * key-sorted buffer. Each worker owns a BatchRenderArena, so steady-
 * state serving allocates almost nothing.
 *
 * Serving runs concurrently with training: workers render from the
 * SnapshotSlot's current ModelSnapshot (serve/snapshot.hpp), which the
 * trainer republishes at step boundaries — clients never observe torn
 * parameters, and every response carries the snapshot version/hash it
 * was rendered from so served frames are traceable to exactly one
 * published state.
 *
 * In *sharded* mode the service serves a ShardedSnapshotSlot instead:
 * each request's frustum is routed against the spatial shard AABBs
 * (shard/router.hpp) and only the selected shards are rendered through
 * the exact per-shard/k-way-merge pipeline (shard/shard_renderer.hpp).
 * Coalesced batches of 2+ requests render through the COMPOSED pipeline
 * (shard/shard_batch.hpp): per-view routing unioned, one fused
 * cull/precompute/sort per union shard — with the cull stage cached per
 * (snapshot version, shard id) across wakeups — then per-view k-way
 * merges. Frames stay bitwise identical to unsharded serving either
 * way; routing bounds the working set, and responses/stats report how
 * many shards the router pruned plus per-batch composition stats
 * (ServeStats::batch_occupancy / mean_batch_shards).
 *
 * Overload is a first-class input, not an error path: every submit()
 * resolves to a RenderResponse with an explicit ServeStatus — never a
 * hang, never a broken promise. AdmissionConfig picks the shed policy
 * (Block preserves the original backpressure-by-blocking behavior;
 * Reject sheds on a full queue; DropOldest evicts the stalest queued
 * request to admit the newest), an optional per-request deadline
 * (expired requests are swept out at dequeue time and failed fast
 * without rendering), and per-client token-bucket fairness keyed by
 * the client id passed to submit(). Shedding changes *which* requests
 * render, never *what* a render produces: admitted frames stay bitwise
 * identical to direct renderForward calls.
 *
 * Throughput and latency are reported through ServeStats (request/batch
 * counters, p50/p99 latency percentiles of *admitted* requests, shed/
 * throttle counters, and a queue-depth gauge); bench/micro_serve.cpp
 * and bench/micro_overload.cpp record them in BENCH_serve.json /
 * BENCH_overload.json.
 *
 * Observability (PR 9): the bespoke counters behind ServeStats moved
 * into a MetricsRegistry (serve.* counters, queue-wait / render-time /
 * latency histograms — the queue-vs-render p99 decomposition), and the
 * request path records tracer spans (serve.admit on the submitting
 * thread; a cross-thread serve.queue_wait async span closed at worker
 * dequeue; serve.route / serve.render / serve.render_batch around
 * rendering, whose per-stage children come from the renderers'
 * StageClocks). The request id doubles as the trace id, so a Perfetto
 * view of the trace follows one request across threads. Tracing reads
 * clocks and writes ring slots only — admitted frames stay bitwise
 * identical with it enabled.
 */

#ifndef CLM_SERVE_RENDER_SERVICE_HPP
#define CLM_SERVE_RENDER_SERVICE_HPP

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "render/batch.hpp"
#include "render/camera.hpp"
#include "render/image.hpp"
#include "render/rasterizer.hpp"
#include "serve/snapshot.hpp"
#include "util/fault.hpp"
#include "util/mpmc_queue.hpp"
#include "util/timer.hpp"

namespace clm {

class ShardedSnapshotSlot;

/** Outcome of one submitted request (RenderResponse::status). */
enum class ServeStatus : int
{
    Ok = 0,               //!< Rendered; image/provenance fields valid.
    ShedQueueFull = 1,    //!< Shed at admission: queue at capacity.
    ShedDeadline = 2,     //!< Expired in queue past its deadline.
    RejectedShutdown = 3, //!< Submitted after stop(); nothing rendered.
    ThrottledClient = 4,  //!< Client token bucket empty.
};

/** Stable lowercase name ("ok", "shed_queue_full", ...). */
const char *serveStatusName(ServeStatus s);

/** What submit() does when the request queue is at capacity. */
enum class ShedPolicy : int
{
    Block = 0,      //!< Block the caller until space (backpressure).
    Reject = 1,     //!< Fail the new request with ShedQueueFull.
    DropOldest = 2, //!< Evict the stalest queued request, admit new.
};

/**
 * Admission control (ServeConfig::admission). Defaults reproduce the
 * historical behavior exactly: block on a full queue, no deadlines, no
 * per-client throttling.
 */
struct AdmissionConfig
{
    ShedPolicy shed = ShedPolicy::Block;
    /** Per-request deadline in seconds from submit to *render start*
     *  (checked when a worker dequeues; a request already being
     *  rendered is never cancelled). 0 disables deadlines. */
    double deadline_s = 0;
    /** Block policy only: give up with ShedQueueFull after waiting
     *  this long for queue space. 0 blocks indefinitely. */
    double block_timeout_s = 0;
    /** Per-client token bucket: capacity in requests. 0 disables
     *  throttling. Each admitted request costs one token. */
    double client_burst = 0;
    /** Token refill rate in requests/second (0 = no refill: exactly
     *  the first client_burst requests per client are admitted — the
     *  deterministic configuration the fairness tests use). */
    double client_rate = 0;
};

/** Serving configuration. */
struct ServeConfig
{
    int workers = 1;             //!< Render worker threads.
    /** Coalescing cap: a worker drains up to this many queued requests
     *  per wakeup and renders them as one fused batch. 1 reproduces
     *  view-at-a-time serving exactly (plain frustumCull +
     *  renderForward per request). */
    int max_batch = 4;
    size_t queue_capacity = 1024;
    RenderConfig render;
    /** Render coalesced batches through the fused pipeline. Off renders
     *  each request of a batch view-at-a-time (the bench baseline);
     *  frames are bitwise identical either way. */
    bool fused_batch = true;
    /** Seed of the deterministic latency-reservoir sampling (see
     *  ServeStats): which observation indices end up in the p50/p99
     *  sample is a pure function of this seed, so percentile estimates
     *  are reproducible run-to-run for a fixed request schedule. */
    uint64_t latency_seed = 0x5e12e;
    /** Overload policy: shed/deadline/fairness (see AdmissionConfig). */
    AdmissionConfig admission;
    /** Fault injection, tests only (util/fault.hpp): may stall workers
     *  at the pop loop and force admission-path saturation. Must
     *  outlive the service. Null in production. */
    FaultInjector *faults = nullptr;
    /** Metrics registry the service reports through (serve.* counters,
     *  queue-wait / render-time / latency histograms). Null = the
     *  service owns a private registry (readable via metrics()); pass
     *  one to aggregate several services or export alongside training
     *  metrics. Must outlive the service. */
    MetricsRegistry *metrics = nullptr;
};

/** One served frame plus its provenance and accounting. */
struct RenderResponse
{
    /** Admission outcome. Only Ok responses carry a rendered image;
     *  shed/rejected/throttled responses report id, status and
     *  queue_s (time spent queued before shedding, 0 if never
     *  admitted) with an empty image. */
    ServeStatus status = ServeStatus::Ok;
    Image image;
    uint64_t request_id = 0;
    uint64_t client_id = 0;          //!< Fairness key from submit().
    uint64_t snapshot_version = 0;   //!< ModelSnapshot::version rendered.
    uint64_t snapshot_hash = 0;      //!< ModelSnapshot::param_hash.
    int train_step = 0;              //!< Trainer step of that snapshot.
    int batch_size = 0;              //!< Size of the coalesced batch.
    double queue_s = 0;              //!< Time spent waiting in the queue.
    double render_s = 0;             //!< Wall time of the batch render.
    /** @name Sharded-mode routing provenance (0 when unsharded) */
    /// @{
    int shards_total = 0;            //!< Shards in the served snapshot.
    int shards_selected = 0;         //!< Shards the router kept.
    /// @}

    bool ok() const { return status == ServeStatus::Ok; }
};

/** Aggregate serving counters (see stats()). */
struct ServeStats
{
    uint64_t requests = 0;           //!< Responses rendered (Ok).
    uint64_t batches = 0;            //!< Coalesced batches rendered.
    double mean_batch = 0;           //!< requests / batches.
    double elapsed_s = 0;            //!< Since service start.
    double requests_per_s = 0;       //!< requests / elapsed.
    /** @name Admission-control counters (see AdmissionConfig)
     * submitted = requests + every shed/rejected/throttled outcome;
     * no request ever goes unaccounted.
     */
    /// @{
    uint64_t submitted = 0;          //!< submit() calls, any outcome.
    uint64_t shed_queue_full = 0;    //!< ShedQueueFull responses.
    uint64_t shed_deadline = 0;      //!< ShedDeadline responses.
    uint64_t rejected_shutdown = 0;  //!< RejectedShutdown responses.
    uint64_t throttled_client = 0;   //!< ThrottledClient responses.
    size_t queue_depth = 0;          //!< Gauge: queued right now.
    /// @}
    /** Latency percentiles/mean/max come from a bounded uniform
     *  reservoir sample of the per-request latencies of *admitted*
     *  (rendered) requests (the counters are exact), so a long-running
     *  service never accumulates unbounded per-request state.
     *  Reservoir membership is decided by a deterministic hash of
     *  (ServeConfig::latency_seed, observation index) — not a shared
     *  RNG whose draw order would depend on worker interleaving — so
     *  the sampled index set is reproducible run-to-run. */
    double p50_ms = 0;               //!< Median request latency.
    double p99_ms = 0;               //!< Tail request latency.
    double mean_ms = 0;
    double max_ms = 0;
    /** @name Latency decomposition (PR 9)
     * WHERE admitted requests spent their time: queued behind other
     * work vs being rendered. Sourced from the serve.queue_wait_ms /
     * serve.render_ms registry histograms, so percentiles here are
     * log-bucket upper edges (deterministic, ~9% resolution) rather
     * than the reservoir-exact end-to-end p50_ms/p99_ms above; means
     * are exact. queue_wait counts per request; render time counts the
     * batch render wall time once per request of the batch.
     */
    /// @{
    double queue_wait_p50_ms = 0;
    double queue_wait_p99_ms = 0;
    double queue_wait_mean_ms = 0;
    double render_p50_ms = 0;
    double render_p99_ms = 0;
    double render_mean_ms = 0;
    /// @}
    uint64_t min_snapshot_version = 0;   //!< Oldest snapshot served.
    uint64_t max_snapshot_version = 0;   //!< Newest snapshot served.
    /** @name Sharded-mode routing counters (zero when unsharded)
     * Router effectiveness: what fraction of the model's shards the
     * frustum routing pruned, averaged over served requests.
     */
    /// @{
    uint64_t sharded_requests = 0;   //!< Requests served via routing.
    double mean_shards_selected = 0; //!< Mean shards rendered/request.
    double mean_shard_frac_pruned = 0;   //!< Mean pruned fraction.
    /// @}
    /** @name Batch-composition counters
     * How well coalescing is working: batch_occupancy[k] counts the
     * wakeups that rendered a batch of k+1 requests (sized to the
     * largest batch seen), and mean_batch_shards is the mean number of
     * DISTINCT shards a coalesced batch touched per wakeup (sharded
     * mode only, 0 otherwise) — the union the composed pipeline
     * renders, as opposed to mean_shards_selected's per-request view.
     */
    /// @{
    std::vector<uint64_t> batch_occupancy;
    double mean_batch_shards = 0;
    /// @}
};

/**
 * Deterministic Algorithm-R replacement slot for the @p index-th
 * latency observation (1-based): a pure function of (seed, index)
 * returning j uniform-ish in [0, index). Observations with
 * j < reservoir-size replace slot j; everything else is dropped. Being
 * index-keyed (not a shared-RNG draw) makes the sampled index set
 * reproducible run-to-run regardless of worker-thread interleaving —
 * the property that keeps benched p50/p99 stable across reruns.
 */
uint64_t latencyReservoirSlot(uint64_t seed, uint64_t index);

/** See file comment. */
class RenderService
{
  public:
    /**
     * Start @p config.workers worker threads serving from @p snapshots.
     * @p snapshots must outlive the service and must have at least one
     * published snapshot before the first request is rendered.
     */
    RenderService(const SnapshotSlot &snapshots, ServeConfig config);

    /**
     * Sharded mode: serve from @p shards (shard/sharded_snapshot.hpp)
     * instead of a whole-model slot. Each request's frustum is routed
     * against the shard AABBs and only the selected shards are
     * rendered, through the exact k-way-merge pipeline
     * (shard/shard_renderer.hpp) — frames are bitwise identical to
     * unsharded serving; routing only bounds the per-request working
     * set. Same lifetime/publish contract as the unsharded ctor.
     */
    RenderService(const ShardedSnapshotSlot &shards, ServeConfig config);

    /** Stops and joins the workers (pending requests are drained). */
    ~RenderService();

    RenderService(const RenderService &) = delete;
    RenderService &operator=(const RenderService &) = delete;

    /**
     * Enqueue a view request under the configured admission policy
     * (@p client_id keys per-client fairness; callers without a notion
     * of clients can leave it 0). The returned future ALWAYS resolves
     * to a RenderResponse — never a hang past the policy's blocking
     * window, never a std::future_error: an admitted request resolves
     * with status Ok when a worker has rendered it; a shed, throttled,
     * expired, or submitted-after-stop() request resolves immediately
     * (or at dequeue, for deadline expiry) with the matching non-Ok
     * status and an empty image. Block policy blocks the *caller*
     * while the queue is at capacity (bounded by
     * AdmissionConfig::block_timeout_s when set) — that is its
     * backpressure contract — but the future it returns still always
     * resolves.
     */
    std::future<RenderResponse> submit(const Camera &camera,
                                       uint64_t client_id = 0);

    /** Close the queue, drain pending requests, join the workers.
     *  Idempotent; also run by the destructor. Requests already queued
     *  are still rendered (deadline sweeping applies); submits that
     *  arrive after close resolve with RejectedShutdown. */
    void stop();

    /** Aggregate counters since construction (callable any time). */
    ServeStats stats() const;

    /** The registry this service reports through: the injected
     *  ServeConfig::metrics, or the service-owned one. */
    const MetricsRegistry &metrics() const
    { return *metrics_; }

    const ServeConfig &config() const { return config_; }

  private:
    struct PendingRequest
    {
        Camera camera;
        uint64_t id = 0;          //!< Request id; doubles as trace id.
        uint64_t client_id = 0;
        double enqueue_s = 0;
        double deadline_s = 0;    //!< Absolute (clock_); 0 = none.
        /** Tracer-clock enqueue stamp (0 when tracing was off at
         *  submit): lets the dequeuing worker close the cross-thread
         *  serve.queue_wait async span. */
        uint64_t enqueue_ns = 0;
        std::promise<RenderResponse> reply;
    };

    /** Tokens-available state of one client's bucket. */
    struct TokenBucket
    {
        double tokens = 0;
        double refill_s = 0;    //!< Last refill timestamp (clock_).
    };

    void workerLoop();
    void shardedWorkerLoop();
    /** Admission front half shared by both worker loops: pop a batch,
     *  failing deadline-expired requests fast. False = queue drained
     *  and closed. */
    bool admitBatch(std::vector<PendingRequest> &batch,
                    std::vector<PendingRequest> &expired);
    /** Fulfill @p req with a non-Ok @p status (empty image) and bump
     *  the matching counter. */
    void failRequest(PendingRequest &req, ServeStatus status);
    /** Token-bucket check; true admits (and debits) the client. */
    bool admitClient(uint64_t client_id);
    void recordBatch(size_t batch_size, const double *latencies_s,
                     uint64_t snapshot_version,
                     uint64_t shards_selected_sum = 0,
                     uint64_t shards_total_sum = 0,
                     uint64_t union_shards = 0);
    /** Resolve the serve.* metric handles (once, before workers). */
    void initMetrics();
    void startWorkers();

    ServeConfig config_;
    const SnapshotSlot *snapshots_ = nullptr;        //!< Unsharded mode.
    const ShardedSnapshotSlot *sharded_ = nullptr;   //!< Sharded mode.
    MpmcQueue<PendingRequest> queue_;
    std::vector<std::thread> workers_;
    Timer clock_;    //!< Service-lifetime clock (latency timestamps).
    bool stopped_ = false;
    std::mutex stop_mutex_;

    std::mutex admission_mutex_;    //!< Guards buckets_.
    std::unordered_map<uint64_t, TokenBucket> buckets_;

    /** Reservoir size for latency percentiles: plenty for stable
     *  p50/p99 while bounding the service's per-request state. */
    static constexpr size_t kLatencyReservoir = 4096;

    /** Private registry used when ServeConfig::metrics is null. */
    MetricsRegistry own_metrics_;
    MetricsRegistry *metrics_ = nullptr;    //!< The registry in use.
    /** @name Resolved serve.* handles (lock-free record paths).
     * The exact counters / histograms the bespoke ServeStats fields
     * were re-plumbed through in PR 9; stats() reads them back.
     */
    /// @{
    Counter *m_submitted_ = nullptr;
    Counter *m_requests_ = nullptr;
    Counter *m_batches_ = nullptr;
    Counter *m_shed_queue_full_ = nullptr;
    Counter *m_shed_deadline_ = nullptr;
    Counter *m_rejected_shutdown_ = nullptr;
    Counter *m_throttled_client_ = nullptr;
    Gauge *m_queue_depth_ = nullptr;
    Histogram *m_queue_wait_ms_ = nullptr;
    Histogram *m_render_ms_ = nullptr;
    Histogram *m_latency_ms_ = nullptr;
    /// @}

    std::atomic<uint64_t> next_id_{1};

    mutable std::mutex stats_mutex_;
    uint64_t min_version_ = 0;
    uint64_t max_version_ = 0;
    uint64_t latency_count_ = 0;     //!< Latencies ever observed.
    std::vector<double> latencies_s_;    //!< Uniform reservoir sample.
    double max_latency_s_ = 0;
    uint64_t shards_selected_sum_ = 0;   //!< Sharded-mode accumulators.
    uint64_t shards_total_sum_ = 0;
    uint64_t sharded_requests_ = 0;
    std::vector<uint64_t> batch_occupancy_;  //!< [k] = batches of k+1.
    uint64_t batch_union_shards_sum_ = 0;    //!< Sum of per-batch unions.
    uint64_t sharded_batches_ = 0;
};

} // namespace clm

#endif // CLM_SERVE_RENDER_SERVICE_HPP
