/**
 * @file
 * Client-side retry for shed/throttled serving responses. When the
 * RenderService is overloaded it resolves requests with an explicit
 * non-Ok ServeStatus instead of blocking or erroring (see
 * AdmissionConfig); a well-behaved client degrades those into retries
 * with capped exponential backoff. The jitter is *deterministic*: a
 * pure function of (seed, request key, attempt) via splitmix64, so a
 * fixed client schedule replays the same backoff sequence run-to-run —
 * same spirit as the deterministic latency reservoir and FaultPlan.
 *
 * Used by the clm_cli serve clients and the flythrough example;
 * submitWithRetry() is the synchronous convenience wrapper.
 */

#ifndef CLM_SERVE_RETRY_HPP
#define CLM_SERVE_RETRY_HPP

#include <cstdint>

#include "serve/render_service.hpp"

namespace clm {

/** Per-client retry accounting (aggregated by the caller). */
struct RetryStats
{
    uint64_t attempts = 0;     //!< submit() calls issued in total.
    uint64_t retries = 0;      //!< Attempts beyond the first.
    uint64_t gave_up = 0;      //!< Requests exhausted or non-retryable.
    double backoff_s = 0;      //!< Total time slept backing off.
};

/** Capped exponential backoff with deterministic seeded jitter. */
struct RetryPolicy
{
    int max_attempts = 4;      //!< Total attempts including the first.
    double base_s = 0.002;     //!< Backoff before the first retry.
    double cap_s = 0.050;      //!< Backoff ceiling.
    uint64_t seed = 0x7e747;   //!< Jitter seed (determinism key).

    /** Shed/throttled outcomes are worth retrying; RejectedShutdown is
     *  terminal (the service is gone); Ok never retries. */
    bool retryable(ServeStatus s) const;

    /**
     * Backoff before retry number @p attempt (1-based) of the request
     * identified by @p request_key: min(cap, base * 2^(attempt-1))
     * scaled by a jitter factor in [0.5, 1.0) that is a pure function
     * of (seed, request_key, attempt) — full determinism for a fixed
     * schedule, decorrelated across requests (no retry stampede).
     */
    double backoffSeconds(uint64_t request_key, int attempt) const;
};

/**
 * Submit @p camera and wait for the response, retrying shed/throttled
 * outcomes per @p policy (sleeping the policy's backoff between
 * attempts). Returns the final response — Ok on success, or the last
 * non-Ok status once attempts are exhausted or the failure is
 * terminal. @p request_key keys the deterministic jitter; pass
 * something stable per logical request (e.g. a frame index).
 */
RenderResponse submitWithRetry(RenderService &service,
                               const Camera &camera, uint64_t client_id,
                               const RetryPolicy &policy,
                               uint64_t request_key,
                               RetryStats *stats = nullptr);

} // namespace clm

#endif // CLM_SERVE_RETRY_HPP
