#include "serve/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/mix.hpp"

namespace clm {

bool
RetryPolicy::retryable(ServeStatus s) const
{
    switch (s) {
    case ServeStatus::ShedQueueFull:
    case ServeStatus::ShedDeadline:
    case ServeStatus::ThrottledClient:
        return true;
    case ServeStatus::Ok:
    case ServeStatus::RejectedShutdown:
        return false;
    }
    return false;
}

double
RetryPolicy::backoffSeconds(uint64_t request_key, int attempt) const
{
    double backoff = base_s;
    for (int a = 1; a < attempt && backoff < cap_s; ++a)
        backoff *= 2.0;
    backoff = std::min(backoff, cap_s);
    const double jitter = mixToUnit(splitmix64(
        seed ^ request_key ^ (static_cast<uint64_t>(attempt) << 48)));
    return backoff * (0.5 + 0.5 * jitter);
}

RenderResponse
submitWithRetry(RenderService &service, const Camera &camera,
                uint64_t client_id, const RetryPolicy &policy,
                uint64_t request_key, RetryStats *stats)
{
    RenderResponse resp;
    for (int attempt = 1;; ++attempt) {
        if (stats != nullptr)
            ++stats->attempts;
        resp = service.submit(camera, client_id).get();
        if (resp.ok())
            return resp;
        if (!policy.retryable(resp.status)
            || attempt >= policy.max_attempts) {
            if (stats != nullptr)
                ++stats->gave_up;
            return resp;
        }
        const double backoff =
            policy.backoffSeconds(request_key, attempt);
        if (stats != nullptr) {
            ++stats->retries;
            stats->backoff_s += backoff;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff));
    }
}

} // namespace clm
