/**
 * @file
 * Train-time model snapshots: the hand-off point between the training
 * loop (which mutates the host-resident model every batch) and the
 * serving subsystem (which renders client views concurrently). The
 * trainer publishes an immutable copy of the model at step boundaries;
 * readers acquire the current snapshot by shared_ptr and can keep
 * rendering from it for as long as they like — they never observe torn
 * parameters, because a snapshot is copied while no training step is in
 * flight and is immutable afterwards.
 *
 * Publication is double-buffered: the slot keeps the previously retired
 * snapshot and reuses its buffers for the next publish when no reader
 * still holds it, so steady-state publishing allocates nothing.
 */

#ifndef CLM_SERVE_SNAPSHOT_HPP
#define CLM_SERVE_SNAPSHOT_HPP

#include <cstdint>
#include <memory>
#include <mutex>

#include "gaussian/model.hpp"

namespace clm {

class FaultInjector;

/** One immutable published model state. */
struct ModelSnapshot
{
    GaussianModel model;
    uint64_t version = 0;      //!< Publication sequence number (from 1).
    int train_step = 0;        //!< Trainer batches completed at publish.
    /** FNV-1a hash over every raw parameter, so served frames can be
     *  traced back to exactly one published state (the
     *  snapshot-swap-under-load test keys on it). */
    uint64_t param_hash = 0;
};

/** FNV-1a over the raw parameter arrays of @p model. */
uint64_t hashModelParams(const GaussianModel &model);

/**
 * Single-publisher / multi-reader snapshot slot (see file comment).
 * publish() is meant to be called from one thread at a time (the
 * training loop); acquire() is safe from any number of threads.
 */
class SnapshotSlot
{
  public:
    /** Copy @p model into a (reused when possible) buffer, stamp it
     *  with the next version and @p train_step, and make it current.
     *  The copy runs outside the slot lock, so readers are never
     *  blocked for longer than a pointer swap. */
    void publish(const GaussianModel &model, int train_step);

    /** The current snapshot; nullptr before the first publish(). */
    std::shared_ptr<const ModelSnapshot> acquire() const;

    /** Version of the current snapshot (0 before the first publish). */
    uint64_t version() const;

    /** Fault injection, tests only: publish() runs the PublishDelay
     *  point (util/fault.hpp) after the model copy, *before* the swap
     *  that makes the new snapshot current — readers keep serving the
     *  previous snapshot for the duration. @p faults must outlive the
     *  slot (or be reset to null first); null disables. */
    void setFaultInjector(FaultInjector *faults);

  private:
    FaultInjector *faultInjector() const;

    mutable std::mutex mutex_;
    FaultInjector *faults_ = nullptr;
    std::shared_ptr<const ModelSnapshot> current_;
    /** Retired snapshot kept for buffer reuse (double buffering). */
    std::shared_ptr<const ModelSnapshot> spare_;
    uint64_t next_version_ = 1;
};

} // namespace clm

#endif // CLM_SERVE_SNAPSHOT_HPP
