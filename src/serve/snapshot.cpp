#include "serve/snapshot.hpp"

#include <utility>

#include "util/fault.hpp"

namespace clm {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
fnvMix(uint64_t &h, const void *data, size_t bytes)
{
    const unsigned char *c = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= c[i];
        h *= kFnvPrime;
    }
}

} // namespace

uint64_t
hashModelParams(const GaussianModel &model)
{
    uint64_t h = kFnvOffset;
    const size_t n = model.size();
    fnvMix(h, &n, sizeof(n));
    for (size_t i = 0; i < n; ++i) {
        fnvMix(h, &model.position(i), sizeof(Vec3));
        fnvMix(h, &model.logScale(i), sizeof(Vec3));
        fnvMix(h, &model.rotation(i), sizeof(Quat));
        fnvMix(h, model.sh(i), kShDim * sizeof(float));
        const float op = model.rawOpacity(i);
        fnvMix(h, &op, sizeof(op));
    }
    return h;
}

void
SnapshotSlot::publish(const GaussianModel &model, int train_step)
{
    // Reclaim the retired buffer when no reader still holds it; only
    // current_ is ever handed out, so a spare_ with use_count() == 1
    // (observed under the lock) can never be re-acquired concurrently.
    std::shared_ptr<ModelSnapshot> buf;
    uint64_t version;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (spare_ && spare_.use_count() == 1) {
            buf = std::const_pointer_cast<ModelSnapshot>(spare_);
            spare_.reset();
        }
        version = next_version_++;
    }
    if (!buf)
        buf = std::make_shared<ModelSnapshot>();

    // The full-model copy and hash run outside the lock: readers keep
    // serving the previous snapshot untouched in the meantime.
    buf->model = model;
    buf->version = version;
    buf->train_step = train_step;
    buf->param_hash = hashModelParams(buf->model);

    // Fault injection (tests): a slow/stalled publication. Readers are
    // unaffected structurally — they keep acquiring the previous
    // snapshot until the swap below.
    if (FaultInjector *f = faultInjector())
        f->inject(FaultPoint::PublishDelay);

    std::lock_guard<std::mutex> lock(mutex_);
    spare_ = std::move(current_);
    current_ = std::move(buf);
}

void
SnapshotSlot::setFaultInjector(FaultInjector *faults)
{
    std::lock_guard<std::mutex> lock(mutex_);
    faults_ = faults;
}

FaultInjector *
SnapshotSlot::faultInjector() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return faults_;
}

std::shared_ptr<const ModelSnapshot>
SnapshotSlot::acquire() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
}

uint64_t
SnapshotSlot::version() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_ ? current_->version : 0;
}

} // namespace clm
