#include "serve/render_service.hpp"

#include <algorithm>
#include <utility>

#include "math/stats.hpp"
#include "obs/trace.hpp"
#include "render/culling.hpp"
#include "shard/router.hpp"
#include "shard/shard_batch.hpp"
#include "shard/shard_renderer.hpp"
#include "shard/sharded_snapshot.hpp"
#include "util/logging.hpp"
#include "util/mix.hpp"

namespace clm {

const char *
serveStatusName(ServeStatus s)
{
    switch (s) {
    case ServeStatus::Ok: return "ok";
    case ServeStatus::ShedQueueFull: return "shed_queue_full";
    case ServeStatus::ShedDeadline: return "shed_deadline";
    case ServeStatus::RejectedShutdown: return "rejected_shutdown";
    case ServeStatus::ThrottledClient: return "throttled_client";
    }
    return "unknown";
}

uint64_t
latencyReservoirSlot(uint64_t seed, uint64_t index)
{
    return splitmix64(seed ^ index) % index;
}

RenderService::RenderService(const SnapshotSlot &snapshots,
                             ServeConfig config)
    : config_(config), snapshots_(&snapshots),
      queue_(config.queue_capacity)
{
    initMetrics();
    startWorkers();
}

RenderService::RenderService(const ShardedSnapshotSlot &shards,
                             ServeConfig config)
    : config_(config), sharded_(&shards), queue_(config.queue_capacity)
{
    initMetrics();
    startWorkers();
}

void
RenderService::initMetrics()
{
    metrics_ = config_.metrics != nullptr ? config_.metrics : &own_metrics_;
    MetricsRegistry &m = *metrics_;
    m_submitted_ = &m.counter("serve.submitted");
    m_requests_ = &m.counter("serve.requests");
    m_batches_ = &m.counter("serve.batches");
    m_shed_queue_full_ = &m.counter("serve.shed_queue_full");
    m_shed_deadline_ = &m.counter("serve.shed_deadline");
    m_rejected_shutdown_ = &m.counter("serve.rejected_shutdown");
    m_throttled_client_ = &m.counter("serve.throttled_client");
    m_queue_depth_ = &m.gauge("serve.queue_depth");
    // Millisecond histograms spanning 1 us .. 100 s at 8 buckets per
    // octave (~9% relative resolution) — wide enough for queue waits
    // under overload and tight enough that p99 decomposition is
    // meaningful.
    m_queue_wait_ms_ = &m.histogram("serve.queue_wait_ms", 1e-3, 1e5, 8);
    m_render_ms_ = &m.histogram("serve.render_ms", 1e-3, 1e5, 8);
    m_latency_ms_ = &m.histogram("serve.latency_ms", 1e-3, 1e5, 8);
}

void
RenderService::startWorkers()
{
    CLM_ASSERT(config_.workers >= 1, "need at least one serve worker");
    CLM_ASSERT(config_.max_batch >= 1, "max_batch must be >= 1");
    workers_.reserve(config_.workers);
    for (int w = 0; w < config_.workers; ++w) {
        if (sharded_ != nullptr)
            workers_.emplace_back([this] { shardedWorkerLoop(); });
        else
            workers_.emplace_back([this] { workerLoop(); });
    }
}

RenderService::~RenderService() { stop(); }

void
RenderService::failRequest(PendingRequest &req, ServeStatus status)
{
    RenderResponse resp;
    resp.status = status;
    resp.request_id = req.id;
    resp.client_id = req.client_id;
    resp.queue_s = clock_.seconds() - req.enqueue_s;
    req.reply.set_value(std::move(resp));
    switch (status) {
    case ServeStatus::ShedQueueFull: m_shed_queue_full_->add(); break;
    case ServeStatus::ShedDeadline: m_shed_deadline_->add(); break;
    case ServeStatus::RejectedShutdown: m_rejected_shutdown_->add(); break;
    case ServeStatus::ThrottledClient: m_throttled_client_->add(); break;
    case ServeStatus::Ok: break;    // not a failure; never passed here
    }
}

bool
RenderService::admitClient(uint64_t client_id)
{
    const AdmissionConfig &adm = config_.admission;
    const double now = clock_.seconds();
    std::lock_guard<std::mutex> lock(admission_mutex_);
    auto emplaced =
        buckets_.try_emplace(client_id, TokenBucket{adm.client_burst, now});
    TokenBucket &bucket = emplaced.first->second;
    if (!emplaced.second && adm.client_rate > 0)
        bucket.tokens =
            std::min(adm.client_burst,
                     bucket.tokens
                         + (now - bucket.refill_s) * adm.client_rate);
    bucket.refill_s = now;
    if (bucket.tokens >= 1.0) {
        bucket.tokens -= 1.0;
        return true;
    }
    return false;
}

std::future<RenderResponse>
RenderService::submit(const Camera &camera, uint64_t client_id)
{
    // The request id doubles as the trace id: minted here, carried in
    // the queue slot, echoed in every span the request's path records.
    const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    m_submitted_->add();
    TraceContext trace_ctx(id);
    ScopedSpan admit_span("serve.admit");
    PendingRequest req{camera, id, client_id, clock_.seconds(), 0, 0, {}};
    if (config_.admission.deadline_s > 0)
        req.deadline_s = req.enqueue_s + config_.admission.deadline_s;
    if (Tracer *tracer = Tracer::current())
        req.enqueue_ns = tracer->nowNs();
    std::future<RenderResponse> fut = req.reply.get_future();

    // Fairness gate first: a throttled client never consumes queue
    // space another client could have used.
    if (config_.admission.client_burst > 0 && !admitClient(client_id)) {
        failRequest(req, ServeStatus::ThrottledClient);
        return fut;
    }
    // Fault injection (tests): the admission path sees a saturated
    // queue regardless of actual occupancy.
    if (config_.faults != nullptr
        && config_.faults->fires(FaultPoint::AdmitSaturate)) {
        failRequest(req, ServeStatus::ShedQueueFull);
        return fut;
    }

    QueuePush result = QueuePush::Closed;
    switch (config_.admission.shed) {
    case ShedPolicy::Block:
        if (config_.admission.block_timeout_s > 0)
            result = queue_.pushFor(req, config_.admission.block_timeout_s);
        else
            result =
                queue_.push(req) ? QueuePush::Ok : QueuePush::Closed;
        break;
    case ShedPolicy::Reject:
        result = queue_.tryPush(req);
        break;
    case ShedPolicy::DropOldest: {
        std::vector<PendingRequest> evicted;
        result = queue_.pushDropOldest(req, evicted);
        for (PendingRequest &old : evicted)
            failRequest(old, ServeStatus::ShedQueueFull);
        break;
    }
    }
    // Every non-enqueued request is fulfilled with an explicit status:
    // never a hang, never a broken promise — submit-after-stop()
    // included.
    if (result == QueuePush::Full)
        failRequest(req, ServeStatus::ShedQueueFull);
    else if (result == QueuePush::Closed)
        failRequest(req, ServeStatus::RejectedShutdown);
    return fut;
}

void
RenderService::stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (stopped_)
            return;
        stopped_ = true;
    }
    queue_.close();    // workers drain what is queued, then exit
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

bool
RenderService::admitBatch(std::vector<PendingRequest> &batch,
                          std::vector<PendingRequest> &expired)
{
    const size_t cap = static_cast<size_t>(config_.max_batch);
    bool alive;
    if (config_.admission.deadline_s > 0) {
        alive = queue_.popBatchFiltered(
            batch, cap,
            [this](const PendingRequest &r) {
                return r.deadline_s > 0 && clock_.seconds() > r.deadline_s;
            },
            expired);
    } else {
        expired.clear();
        alive = queue_.popBatch(batch, cap);
    }
    if (!alive)
        return false;
    for (PendingRequest &r : expired)
        failRequest(r, ServeStatus::ShedDeadline);
    return true;
}

void
RenderService::workerLoop()
{
    std::vector<PendingRequest> batch;
    std::vector<PendingRequest> expired;
    BatchRenderArena arena;
    std::vector<Camera> cams;
    std::vector<std::vector<uint32_t>> subsets;
    std::vector<double> latencies;

    while (true) {
        if (config_.faults != nullptr)
            config_.faults->inject(FaultPoint::WorkerStall);
        if (!admitBatch(batch, expired))
            break;
        if (batch.empty())
            continue;    // everything queued had expired
        // Close the cross-thread serve.queue_wait spans: began on the
        // submitting thread (enqueue_ns), end at this dequeue. Async-
        // kind, so the exporter emits "b"/"e" pairs keyed by trace id.
        if (Tracer *tracer = Tracer::current()) {
            const uint64_t now_ns = tracer->nowNs();
            for (const PendingRequest &r : batch)
                if (r.enqueue_ns != 0)
                    tracer->record("serve.queue_wait", r.id, r.enqueue_ns,
                                   now_ns, 0, SpanKind::Async);
        }
        std::shared_ptr<const ModelSnapshot> snap = snapshots_->acquire();
        CLM_ASSERT(snap != nullptr,
                   "RenderService: render requested before the first "
                   "snapshot publish");
        const size_t n = batch.size();
        latencies.resize(n);

        auto respond = [&](size_t v, Image image, double batch_t0,
                           double render_s) {
            RenderResponse resp;
            resp.image = std::move(image);
            resp.request_id = batch[v].id;
            resp.client_id = batch[v].client_id;
            resp.snapshot_version = snap->version;
            resp.snapshot_hash = snap->param_hash;
            resp.train_step = snap->train_step;
            resp.batch_size = static_cast<int>(n);
            resp.queue_s = batch_t0 - batch[v].enqueue_s;
            resp.render_s = render_s;
            latencies[v] = clock_.seconds() - batch[v].enqueue_s;
            m_queue_wait_ms_->record(resp.queue_s * 1e3);
            m_render_ms_->record(render_s * 1e3);
            m_latency_ms_->record(latencies[v] * 1e3);
            batch[v].reply.set_value(std::move(resp));
        };

        if (config_.fused_batch && n > 1) {
            // Fused multi-view pass: one shared cull/precompute/sort
            // for the whole coalesced batch. The snapshot version keys
            // the cull stage cache: consecutive batches on the same
            // published state skip the per-Gaussian SoA rebuild.
            const double t0 = clock_.seconds();
            cams.clear();
            for (const PendingRequest &r : batch)
                cams.push_back(r.camera);
            {
                // Span attributed to the batch's first request (one
                // batch, one span; per-stage children carry the same
                // ambient trace id via StageClock).
                TraceContext trace_ctx(batch[0].id);
                ScopedSpan render_span("serve.render_batch");
                frustumCullBatch(snap->model, cams, arena.cull, subsets,
                                 config_.render.parallel, snap->version);
                renderForwardBatch(snap->model, cams, subsets,
                                   config_.render, arena);
            }
            const double render_s = clock_.seconds() - t0;
            for (size_t v = 0; v < n; ++v)
                respond(v, arena.views[v].out.image, t0, render_s);
        } else {
            // View-at-a-time: the plain single-view path per request.
            if (arena.views.empty())
                arena.views.resize(1);
            for (size_t v = 0; v < n; ++v) {
                const double t0 = clock_.seconds();
                TraceContext trace_ctx(batch[v].id);
                ScopedSpan render_span("serve.render");
                auto subset = frustumCull(snap->model, batch[v].camera);
                const RenderOutput &out =
                    renderForward(snap->model, batch[v].camera, subset,
                                  config_.render, arena.views[0]);
                const double render_s = clock_.seconds() - t0;
                respond(v, out.image, t0, render_s);
            }
        }
        recordBatch(n, latencies.data(), snap->version);
    }
}

void
RenderService::shardedWorkerLoop()
{
    std::vector<PendingRequest> batch;
    std::vector<PendingRequest> expired;
    ShardRenderArena arena;
    ShardBatchRenderArena batch_arena;
    std::vector<Camera> cams;
    std::vector<uint32_t> union_scratch;
    std::vector<double> latencies;
    ShardRouter router;
    uint64_t router_version = 0;    //!< Base version router was built on.

    while (true) {
        if (config_.faults != nullptr)
            config_.faults->inject(FaultPoint::WorkerStall);
        if (!admitBatch(batch, expired))
            break;
        if (batch.empty())
            continue;    // everything queued had expired
        if (Tracer *tracer = Tracer::current()) {
            const uint64_t now_ns = tracer->nowNs();
            for (const PendingRequest &r : batch)
                if (r.enqueue_ns != 0)
                    tracer->record("serve.queue_wait", r.id, r.enqueue_ns,
                                   now_ns, 0, SpanKind::Async);
        }
        std::shared_ptr<const ShardedSnapshot> snap = sharded_->acquire();
        CLM_ASSERT(snap != nullptr,
                   "RenderService: render requested before the first "
                   "sharded snapshot publish");
        CLM_ASSERT(snap->base != nullptr, "sharded snapshot without base");
        if (router.shardCount() == 0
            || router_version != snap->base->version) {
            router = ShardRouter(*snap);
            router_version = snap->base->version;
        }
        const size_t n = batch.size();
        latencies.resize(n);
        uint64_t selected_sum = 0;
        uint64_t total_sum = 0;
        uint64_t union_shards = 0;

        if (config_.fused_batch && n > 1) {
            // Composed pipeline (shard/shard_batch.hpp): per-view
            // routing unioned, one fused cull/precompute/sort per union
            // shard — the cull stage cached per (snapshot version,
            // shard id) across wakeups — then the exact per-view k-way
            // merges. Frames are bitwise identical to the
            // view-at-a-time path below.
            const double t0 = clock_.seconds();
            cams.clear();
            for (const PendingRequest &r : batch)
                cams.push_back(r.camera);
            {
                TraceContext trace_ctx(batch[0].id);
                ScopedSpan render_span("serve.render_batch");
                renderForwardBatchSharded(*snap, router, cams,
                                          config_.render, batch_arena,
                                          snap->base->version);
            }
            const double render_s = clock_.seconds() - t0;
            union_shards = batch_arena.union_shards.size();
            for (size_t v = 0; v < n; ++v) {
                RenderResponse resp;
                resp.image = batch_arena.views[v].out.image;
                resp.request_id = batch[v].id;
                resp.client_id = batch[v].client_id;
                resp.snapshot_version = snap->base->version;
                resp.snapshot_hash = snap->base->param_hash;
                resp.train_step = snap->base->train_step;
                resp.batch_size = static_cast<int>(n);
                resp.queue_s = t0 - batch[v].enqueue_s;
                resp.render_s = render_s;
                resp.shards_total = static_cast<int>(snap->shardCount());
                resp.shards_selected =
                    static_cast<int>(batch_arena.routes[v].size());
                selected_sum += batch_arena.routes[v].size();
                total_sum += snap->shardCount();
                latencies[v] = clock_.seconds() - batch[v].enqueue_s;
                m_queue_wait_ms_->record(resp.queue_s * 1e3);
                m_render_ms_->record(render_s * 1e3);
                m_latency_ms_->record(latencies[v] * 1e3);
                batch[v].reply.set_value(std::move(resp));
            }
        } else {
            // View-at-a-time: route + render each request alone (also
            // the max_batch=1 / fused_batch=off bench baseline).
            union_scratch.clear();
            for (size_t v = 0; v < n; ++v) {
                const double t0 = clock_.seconds();
                TraceContext trace_ctx(batch[v].id);
                {
                    ScopedSpan route_span("serve.route");
                    router.route(batch[v].camera.frustum(), arena.route);
                }
                ScopedSpan render_span("serve.render");
                const RenderOutput &out = renderForwardSharded(
                    *snap, arena.route, batch[v].camera, config_.render,
                    arena);
                const double render_s = clock_.seconds() - t0;

                RenderResponse resp;
                resp.image = out.image;
                resp.request_id = batch[v].id;
                resp.client_id = batch[v].client_id;
                resp.snapshot_version = snap->base->version;
                resp.snapshot_hash = snap->base->param_hash;
                resp.train_step = snap->base->train_step;
                resp.batch_size = static_cast<int>(n);
                resp.queue_s = t0 - batch[v].enqueue_s;
                resp.render_s = render_s;
                resp.shards_total = static_cast<int>(snap->shardCount());
                resp.shards_selected =
                    static_cast<int>(arena.route.size());
                selected_sum += arena.route.size();
                total_sum += snap->shardCount();
                union_scratch.insert(union_scratch.end(),
                                     arena.route.begin(),
                                     arena.route.end());
                latencies[v] = clock_.seconds() - batch[v].enqueue_s;
                m_queue_wait_ms_->record(resp.queue_s * 1e3);
                m_render_ms_->record(render_s * 1e3);
                m_latency_ms_->record(latencies[v] * 1e3);
                batch[v].reply.set_value(std::move(resp));
            }
            std::sort(union_scratch.begin(), union_scratch.end());
            union_shards = static_cast<uint64_t>(
                std::unique(union_scratch.begin(), union_scratch.end())
                - union_scratch.begin());
        }
        recordBatch(n, latencies.data(), snap->base->version,
                    selected_sum, total_sum, union_shards);
    }
}

void
RenderService::recordBatch(size_t batch_size, const double *latencies_s,
                           uint64_t snapshot_version,
                           uint64_t shards_selected_sum,
                           uint64_t shards_total_sum,
                           uint64_t union_shards)
{
    m_requests_->add(batch_size);
    m_batches_->add();
    // Keep the gauge live for the periodic exporter, not only stats().
    m_queue_depth_->set(static_cast<double>(queue_.size()));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (batch_occupancy_.size() < batch_size)
        batch_occupancy_.resize(batch_size, 0);
    ++batch_occupancy_[batch_size - 1];
    for (size_t v = 0; v < batch_size; ++v) {
        // Algorithm-R uniform reservoir. The replacement slot for the
        // i-th observation is splitmix64(seed, i) % i — a pure function
        // of the (seed, index) pair, so the set of sampled indices is
        // reproducible run-to-run regardless of how worker threads
        // interleave their recordBatch calls.
        const double l = latencies_s[v];
        max_latency_s_ = std::max(max_latency_s_, l);
        ++latency_count_;
        if (latencies_s_.size() < kLatencyReservoir) {
            latencies_s_.push_back(l);
        } else {
            const uint64_t j = latencyReservoirSlot(config_.latency_seed,
                                                    latency_count_);
            if (j < kLatencyReservoir)
                latencies_s_[j] = l;
        }
    }
    if (min_version_ == 0 || snapshot_version < min_version_)
        min_version_ = snapshot_version;
    if (snapshot_version > max_version_)
        max_version_ = snapshot_version;
    if (shards_total_sum > 0) {
        sharded_requests_ += batch_size;
        shards_selected_sum_ += shards_selected_sum;
        shards_total_sum_ += shards_total_sum;
        ++sharded_batches_;
        batch_union_shards_sum_ += union_shards;
    }
}

ServeStats
RenderService::stats() const
{
    ServeStats s;
    // Counters and histograms live in the metrics registry now (the
    // PR-9 re-plumb); ServeStats keeps its shape as the read-side view.
    s.requests = m_requests_->value();
    s.batches = m_batches_->value();
    s.submitted = m_submitted_->value();
    s.shed_queue_full = m_shed_queue_full_->value();
    s.shed_deadline = m_shed_deadline_->value();
    s.rejected_shutdown = m_rejected_shutdown_->value();
    s.throttled_client = m_throttled_client_->value();
    s.queue_wait_p50_ms = m_queue_wait_ms_->percentile(50);
    s.queue_wait_p99_ms = m_queue_wait_ms_->percentile(99);
    s.queue_wait_mean_ms = m_queue_wait_ms_->mean();
    s.render_p50_ms = m_render_ms_->percentile(50);
    s.render_p99_ms = m_render_ms_->percentile(99);
    s.render_mean_ms = m_render_ms_->mean();
    std::vector<double> lat;
    double max_latency_s;
    uint64_t sel_sum, tot_sum;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        s.min_snapshot_version = min_version_;
        s.max_snapshot_version = max_version_;
        s.sharded_requests = sharded_requests_;
        s.batch_occupancy = batch_occupancy_;
        if (sharded_batches_ > 0)
            s.mean_batch_shards =
                static_cast<double>(batch_union_shards_sum_)
                / static_cast<double>(sharded_batches_);
        sel_sum = shards_selected_sum_;
        tot_sum = shards_total_sum_;
        lat = latencies_s_;
        max_latency_s = max_latency_s_;
    }
    s.queue_depth = queue_.size();
    m_queue_depth_->set(static_cast<double>(s.queue_depth));
    s.elapsed_s = clock_.seconds();
    if (s.batches > 0)
        s.mean_batch =
            static_cast<double>(s.requests) / static_cast<double>(s.batches);
    if (s.elapsed_s > 0)
        s.requests_per_s = static_cast<double>(s.requests) / s.elapsed_s;
    if (s.sharded_requests > 0) {
        s.mean_shards_selected = static_cast<double>(sel_sum)
                               / static_cast<double>(s.sharded_requests);
        if (tot_sum > 0)
            s.mean_shard_frac_pruned =
                1.0
                - static_cast<double>(sel_sum)
                      / static_cast<double>(tot_sum);
    }
    if (!lat.empty()) {
        double sum = 0;
        for (double l : lat)
            sum += l;
        s.mean_ms = sum / lat.size() * 1e3;
        s.max_ms = max_latency_s * 1e3;    // exact, not sampled
        EmpiricalCdf cdf(std::move(lat));
        s.p50_ms = cdf.percentile(50.0) * 1e3;
        s.p99_ms = cdf.percentile(99.0) * 1e3;
    }
    return s;
}

} // namespace clm
