#include "serve/render_service.hpp"

#include <algorithm>
#include <utility>

#include "math/stats.hpp"
#include "render/culling.hpp"
#include "util/logging.hpp"

namespace clm {

RenderService::RenderService(const SnapshotSlot &snapshots,
                             ServeConfig config)
    : config_(config), snapshots_(snapshots),
      queue_(config.queue_capacity)
{
    CLM_ASSERT(config_.workers >= 1, "need at least one serve worker");
    CLM_ASSERT(config_.max_batch >= 1, "max_batch must be >= 1");
    workers_.reserve(config_.workers);
    for (int w = 0; w < config_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

RenderService::~RenderService() { stop(); }

std::future<RenderResponse>
RenderService::submit(const Camera &camera)
{
    uint64_t id;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        id = next_id_++;
    }
    PendingRequest req{camera, id, clock_.seconds(), {}};
    std::future<RenderResponse> fut = req.reply.get_future();
    // If the queue was already closed the request is dropped and the
    // future fails with broken_promise — submitting after stop() is a
    // caller error, but never a hang.
    queue_.push(std::move(req));
    return fut;
}

void
RenderService::stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (stopped_)
            return;
        stopped_ = true;
    }
    queue_.close();    // workers drain what is queued, then exit
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

void
RenderService::workerLoop()
{
    std::vector<PendingRequest> batch;
    BatchRenderArena arena;
    std::vector<Camera> cams;
    std::vector<std::vector<uint32_t>> subsets;
    std::vector<double> latencies;

    while (queue_.popBatch(batch, config_.max_batch)) {
        std::shared_ptr<const ModelSnapshot> snap = snapshots_.acquire();
        CLM_ASSERT(snap != nullptr,
                   "RenderService: render requested before the first "
                   "snapshot publish");
        const size_t n = batch.size();
        latencies.resize(n);

        auto respond = [&](size_t v, Image image, double batch_t0,
                           double render_s) {
            RenderResponse resp;
            resp.image = std::move(image);
            resp.request_id = batch[v].id;
            resp.snapshot_version = snap->version;
            resp.snapshot_hash = snap->param_hash;
            resp.train_step = snap->train_step;
            resp.batch_size = static_cast<int>(n);
            resp.queue_s = batch_t0 - batch[v].enqueue_s;
            resp.render_s = render_s;
            latencies[v] = clock_.seconds() - batch[v].enqueue_s;
            batch[v].reply.set_value(std::move(resp));
        };

        if (config_.fused_batch && n > 1) {
            // Fused multi-view pass: one shared cull/precompute/sort
            // for the whole coalesced batch.
            const double t0 = clock_.seconds();
            cams.clear();
            for (const PendingRequest &r : batch)
                cams.push_back(r.camera);
            frustumCullBatch(snap->model, cams, arena.cull, subsets,
                             config_.render.parallel);
            renderForwardBatch(snap->model, cams, subsets,
                               config_.render, arena);
            const double render_s = clock_.seconds() - t0;
            for (size_t v = 0; v < n; ++v)
                respond(v, arena.views[v].out.image, t0, render_s);
        } else {
            // View-at-a-time: the plain single-view path per request.
            if (arena.views.empty())
                arena.views.resize(1);
            for (size_t v = 0; v < n; ++v) {
                const double t0 = clock_.seconds();
                auto subset = frustumCull(snap->model, batch[v].camera);
                const RenderOutput &out =
                    renderForward(snap->model, batch[v].camera, subset,
                                  config_.render, arena.views[0]);
                const double render_s = clock_.seconds() - t0;
                respond(v, out.image, t0, render_s);
            }
        }
        recordBatch(n, latencies.data(), snap->version);
    }
}

void
RenderService::recordBatch(size_t batch_size, const double *latencies_s,
                           uint64_t snapshot_version)
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    done_requests_ += batch_size;
    done_batches_ += 1;
    for (size_t v = 0; v < batch_size; ++v) {
        // Algorithm-R uniform reservoir: every latency ever observed
        // has equal probability of being in the sample.
        const double l = latencies_s[v];
        max_latency_s_ = std::max(max_latency_s_, l);
        ++latency_count_;
        if (latencies_s_.size() < kLatencyReservoir) {
            latencies_s_.push_back(l);
        } else {
            const uint64_t j = static_cast<uint64_t>(
                reservoir_rng_.uniformInt(
                    0, static_cast<int64_t>(latency_count_) - 1));
            if (j < kLatencyReservoir)
                latencies_s_[j] = l;
        }
    }
    if (min_version_ == 0 || snapshot_version < min_version_)
        min_version_ = snapshot_version;
    if (snapshot_version > max_version_)
        max_version_ = snapshot_version;
}

ServeStats
RenderService::stats() const
{
    ServeStats s;
    std::vector<double> lat;
    double max_latency_s;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        s.requests = done_requests_;
        s.batches = done_batches_;
        s.min_snapshot_version = min_version_;
        s.max_snapshot_version = max_version_;
        lat = latencies_s_;
        max_latency_s = max_latency_s_;
    }
    s.elapsed_s = clock_.seconds();
    if (s.batches > 0)
        s.mean_batch =
            static_cast<double>(s.requests) / static_cast<double>(s.batches);
    if (s.elapsed_s > 0)
        s.requests_per_s = static_cast<double>(s.requests) / s.elapsed_s;
    if (!lat.empty()) {
        double sum = 0;
        for (double l : lat)
            sum += l;
        s.mean_ms = sum / lat.size() * 1e3;
        s.max_ms = max_latency_s * 1e3;    // exact, not sampled
        EmpiricalCdf cdf(std::move(lat));
        s.p50_ms = cdf.percentile(50.0) * 1e3;
        s.p99_ms = cdf.percentile(99.0) * 1e3;
    }
    return s;
}

} // namespace clm
