/**
 * @file
 * The four microbatch ordering strategies of Table 4: Random, Camera
 * (principal-axis sort), GS Count (descending in-frustum count), and the
 * TSP order used by CLM. Also provides the sorted-set helpers used to
 * build the symmetric-difference distance matrix.
 */

#ifndef CLM_SCHED_ORDERING_HPP
#define CLM_SCHED_ORDERING_HPP

#include <cstdint>
#include <vector>

#include "math/vec.hpp"
#include "sched/tsp.hpp"

namespace clm {

/** The ordering strategies compared in the paper's ablation (Table 4). */
enum class OrderingStrategy
{
    Random,     //!< Uniformly shuffled views (the default baseline).
    Camera,     //!< Sorted by camera center along the principal axis.
    GsCount,    //!< Sorted descending by |S_i| (finalize more, earlier).
    Tsp,        //!< CLM's overlap-maximizing TSP order (§4.2.3).
};

/** Human-readable strategy name, as used in the paper's tables. */
const char *orderingName(OrderingStrategy s);

/** All four strategies in the paper's presentation order. */
std::vector<OrderingStrategy> allOrderingStrategies();

/** |a intersect b| for ascending-sorted index sets. */
size_t intersectionSize(const std::vector<uint32_t> &a,
                        const std::vector<uint32_t> &b);

/** |a xor b| (symmetric difference) for ascending-sorted index sets. */
size_t symmetricDifferenceSize(const std::vector<uint32_t> &a,
                               const std::vector<uint32_t> &b);

/**
 * Build the TSP distance matrix d(i,j) = |S_i xor S_j| from the per-view
 * in-frustum sets (each ascending-sorted).
 */
DistanceMatrix buildOverlapDistanceMatrix(
    const std::vector<std::vector<uint32_t>> &sets);

/** Inputs an ordering strategy may need. */
struct OrderingInputs
{
    /** Per-view in-frustum sets, ascending-sorted (GS count, TSP). */
    const std::vector<std::vector<uint32_t>> *sets = nullptr;
    /** Per-view camera centers (camera order). */
    const std::vector<Vec3> *camera_centers = nullptr;
    /** Randomness for the Random strategy / TSP restarts. */
    uint64_t seed = 1;
    /** TSP budget (CLM uses 1 ms). */
    TspConfig tsp;
};

/**
 * Compute the processing order for the views of one batch.
 *
 * @return A permutation of 0..n-1 (n = number of views in the batch).
 */
std::vector<int> orderViews(OrderingStrategy strategy, size_t n_views,
                            const OrderingInputs &inputs);

} // namespace clm

#endif // CLM_SCHED_ORDERING_HPP
