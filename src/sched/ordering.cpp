#include "sched/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "math/mat.hpp"
#include "util/logging.hpp"

namespace clm {

const char *
orderingName(OrderingStrategy s)
{
    switch (s) {
      case OrderingStrategy::Random:
        return "Random Order";
      case OrderingStrategy::Camera:
        return "Camera Order";
      case OrderingStrategy::GsCount:
        return "GS Count Order";
      case OrderingStrategy::Tsp:
        return "TSP Order";
    }
    return "?";
}

std::vector<OrderingStrategy>
allOrderingStrategies()
{
    return {OrderingStrategy::Random, OrderingStrategy::Camera,
            OrderingStrategy::GsCount, OrderingStrategy::Tsp};
}

size_t
intersectionSize(const std::vector<uint32_t> &a,
                 const std::vector<uint32_t> &b)
{
    size_t i = 0, j = 0, n = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            ++n;
            ++i;
            ++j;
        }
    }
    return n;
}

size_t
symmetricDifferenceSize(const std::vector<uint32_t> &a,
                        const std::vector<uint32_t> &b)
{
    return a.size() + b.size() - 2 * intersectionSize(a, b);
}

DistanceMatrix
buildOverlapDistanceMatrix(const std::vector<std::vector<uint32_t>> &sets)
{
    DistanceMatrix d(sets.size());
    for (size_t i = 0; i < sets.size(); ++i)
        for (size_t j = i + 1; j < sets.size(); ++j)
            d.set(i, j, static_cast<double>(
                            symmetricDifferenceSize(sets[i], sets[j])));
    return d;
}

namespace {

/** Principal axis of a point set via power iteration on the covariance. */
Vec3
principalAxis(const std::vector<Vec3> &pts)
{
    if (pts.size() < 2)
        return {1, 0, 0};
    Vec3 mean{0, 0, 0};
    for (const Vec3 &p : pts)
        mean += p;
    mean *= 1.0f / pts.size();

    Mat3 cov;
    for (const Vec3 &p : pts) {
        Vec3 d = p - mean;
        cov.m[0][0] += d.x * d.x;
        cov.m[0][1] += d.x * d.y;
        cov.m[0][2] += d.x * d.z;
        cov.m[1][1] += d.y * d.y;
        cov.m[1][2] += d.y * d.z;
        cov.m[2][2] += d.z * d.z;
    }
    cov.m[1][0] = cov.m[0][1];
    cov.m[2][0] = cov.m[0][2];
    cov.m[2][1] = cov.m[1][2];

    Vec3 v{1.0f, 0.7f, 0.3f};
    for (int it = 0; it < 32; ++it) {
        Vec3 nv = cov.mul(v);
        float n = nv.norm();
        if (n < 1e-20f)
            return {1, 0, 0};
        v = nv * (1.0f / n);
    }
    return v;
}

} // namespace

std::vector<int>
orderViews(OrderingStrategy strategy, size_t n_views,
           const OrderingInputs &inputs)
{
    std::vector<int> order(n_views);
    std::iota(order.begin(), order.end(), 0);
    if (n_views <= 1)
        return order;

    switch (strategy) {
      case OrderingStrategy::Random: {
        std::mt19937_64 rng(inputs.seed);
        std::shuffle(order.begin(), order.end(), rng);
        break;
      }
      case OrderingStrategy::Camera: {
        CLM_ASSERT(inputs.camera_centers
                       && inputs.camera_centers->size() == n_views,
                   "camera order needs camera centers");
        Vec3 axis = principalAxis(*inputs.camera_centers);
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return (*inputs.camera_centers)[a].dot(axis)
                 < (*inputs.camera_centers)[b].dot(axis);
        });
        break;
      }
      case OrderingStrategy::GsCount: {
        CLM_ASSERT(inputs.sets && inputs.sets->size() == n_views,
                   "GS count order needs in-frustum sets");
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return (*inputs.sets)[a].size() > (*inputs.sets)[b].size();
        });
        break;
      }
      case OrderingStrategy::Tsp: {
        CLM_ASSERT(inputs.sets && inputs.sets->size() == n_views,
                   "TSP order needs in-frustum sets");
        DistanceMatrix d = buildOverlapDistanceMatrix(*inputs.sets);
        TspConfig cfg = inputs.tsp;
        cfg.seed = inputs.seed;
        TspResult r = solveTsp(d, cfg);
        order = r.tour;
        break;
      }
    }
    return order;
}

} // namespace clm
