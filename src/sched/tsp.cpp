#include "sched/tsp.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <random>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace clm {

DistanceMatrix::DistanceMatrix(size_t n) : n_(n), d_(n * n, 0.0) {}

void
DistanceMatrix::set(size_t i, size_t j, double v)
{
    CLM_ASSERT(i < n_ && j < n_, "distance index out of range");
    d_[i * n_ + j] = v;
    d_[j * n_ + i] = v;
}

bool
DistanceMatrix::isMetric(double tol) const
{
    for (size_t i = 0; i < n_; ++i) {
        if (std::abs(at(i, i)) > tol)
            return false;
        for (size_t j = 0; j < n_; ++j) {
            if (at(i, j) < -tol)
                return false;
            if (std::abs(at(i, j) - at(j, i)) > tol)
                return false;
        }
    }
    for (size_t i = 0; i < n_; ++i)
        for (size_t j = 0; j < n_; ++j)
            for (size_t k = 0; k < n_; ++k)
                if (at(i, j) > at(i, k) + at(k, j) + tol)
                    return false;
    return true;
}

double
tourLength(const DistanceMatrix &d, const std::vector<int> &tour)
{
    double len = 0.0;
    for (size_t i = 0; i + 1 < tour.size(); ++i)
        len += d.at(tour[i], tour[i + 1]);
    return len;
}

namespace {

/** Greedy nearest-neighbour construction from a random start (A.1). */
std::vector<int>
nearestNeighbourTour(const DistanceMatrix &d, std::mt19937_64 &rng)
{
    size_t n = d.size();
    std::vector<int> tour;
    tour.reserve(n);
    std::vector<bool> used(n, false);
    int cur = static_cast<int>(
        std::uniform_int_distribution<size_t>(0, n - 1)(rng));
    tour.push_back(cur);
    used[cur] = true;
    for (size_t step = 1; step < n; ++step) {
        int best = -1;
        double best_d = std::numeric_limits<double>::max();
        for (size_t j = 0; j < n; ++j) {
            if (!used[j] && d.at(cur, j) < best_d) {
                best_d = d.at(cur, j);
                best = static_cast<int>(j);
            }
        }
        tour.push_back(best);
        used[best] = true;
        cur = best;
    }
    return tour;
}

/**
 * One full 2-opt sweep on an open path: reverse tour[i..j] when it
 * shortens the two boundary edges. Returns true if any move improved.
 */
bool
twoOptSweep(const DistanceMatrix &d, std::vector<int> &tour,
            const Timer &timer, double limit_ms)
{
    size_t n = tour.size();
    bool improved = false;
    for (size_t i = 0; i + 1 < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            // Edges removed: (i-1, i) and (j, j+1); path ends have none.
            double removed = 0.0, added = 0.0;
            if (i > 0) {
                removed += d.at(tour[i - 1], tour[i]);
                added += d.at(tour[i - 1], tour[j]);
            }
            if (j + 1 < n) {
                removed += d.at(tour[j], tour[j + 1]);
                added += d.at(tour[i], tour[j + 1]);
            }
            if (added + 1e-12 < removed) {
                std::reverse(tour.begin() + i, tour.begin() + j + 1);
                improved = true;
            }
        }
        if (timer.millis() > limit_ms)
            return improved;
    }
    return improved;
}

/** Double-bridge 4-segment reconnection (the classic 3/4-opt kick). */
std::vector<int>
doubleBridge(const std::vector<int> &tour, std::mt19937_64 &rng)
{
    size_t n = tour.size();
    if (n < 8)
        return tour;
    std::uniform_int_distribution<size_t> dist(1, n - 3);
    size_t a = dist(rng), b = dist(rng), c = dist(rng);
    size_t cuts[3] = {a, b, c};
    std::sort(cuts, cuts + 3);
    if (cuts[0] == cuts[1] || cuts[1] == cuts[2])
        return tour;
    std::vector<int> out;
    out.reserve(n);
    out.insert(out.end(), tour.begin(), tour.begin() + cuts[0]);
    out.insert(out.end(), tour.begin() + cuts[1], tour.begin() + cuts[2]);
    out.insert(out.end(), tour.begin() + cuts[0], tour.begin() + cuts[1]);
    out.insert(out.end(), tour.begin() + cuts[2], tour.end());
    return out;
}

} // namespace

TspResult
solveTsp(const DistanceMatrix &d, const TspConfig &config)
{
    TspResult result;
    size_t n = d.size();
    if (n == 0)
        return result;
    if (n == 1) {
        result.tour = {0};
        return result;
    }

    Timer timer;
    std::mt19937_64 rng(config.seed);

    std::vector<int> best = nearestNeighbourTour(d, rng);
    while (twoOptSweep(d, best, timer, config.time_limit_ms)) {
        ++result.sweeps;
        if (timer.millis() > config.time_limit_ms)
            break;
    }
    double best_len = tourLength(d, best);

    // Stochastic local search: perturb + re-optimize while budget remains.
    while (config.use_3opt && timer.millis() < config.time_limit_ms) {
        std::vector<int> cand = doubleBridge(best, rng);
        while (twoOptSweep(d, cand, timer, config.time_limit_ms)) {
            ++result.sweeps;
            if (timer.millis() > config.time_limit_ms)
                break;
        }
        ++result.perturbations;
        double cand_len = tourLength(d, cand);
        if (cand_len + 1e-12 < best_len) {
            best = std::move(cand);
            best_len = cand_len;
        }
    }

    result.tour = std::move(best);
    result.length = best_len;
    return result;
}

TspResult
solveTspExact(const DistanceMatrix &d)
{
    size_t n = d.size();
    CLM_ASSERT(n >= 1 && n <= 20, "exact solver limited to small n");
    TspResult result;
    if (n == 1) {
        result.tour = {0};
        return result;
    }

    const size_t full = (size_t(1) << n) - 1;
    constexpr double inf = std::numeric_limits<double>::max() / 4;
    // dp[mask][j]: shortest path covering `mask`, ending at j.
    std::vector<double> dp((full + 1) * n, inf);
    std::vector<int> parent((full + 1) * n, -1);
    for (size_t j = 0; j < n; ++j)
        dp[(size_t(1) << j) * n + j] = 0.0;

    for (size_t mask = 1; mask <= full; ++mask) {
        for (size_t j = 0; j < n; ++j) {
            if (!(mask & (size_t(1) << j)))
                continue;
            double cur = dp[mask * n + j];
            if (cur >= inf)
                continue;
            for (size_t k = 0; k < n; ++k) {
                if (mask & (size_t(1) << k))
                    continue;
                size_t nmask = mask | (size_t(1) << k);
                double cand = cur + d.at(j, k);
                if (cand < dp[nmask * n + k]) {
                    dp[nmask * n + k] = cand;
                    parent[nmask * n + k] = static_cast<int>(j);
                }
            }
        }
    }

    size_t end = 0;
    double best = inf;
    for (size_t j = 0; j < n; ++j) {
        if (dp[full * n + j] < best) {
            best = dp[full * n + j];
            end = j;
        }
    }
    // Reconstruct.
    std::vector<int> tour;
    size_t mask = full;
    int cur = static_cast<int>(end);
    while (cur >= 0) {
        tour.push_back(cur);
        int p = parent[mask * n + cur];
        mask &= ~(size_t(1) << cur);
        cur = p;
    }
    std::reverse(tour.begin(), tour.end());
    result.tour = std::move(tour);
    result.length = best;
    return result;
}

} // namespace clm
