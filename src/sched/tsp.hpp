/**
 * @file
 * Traveling-salesman machinery for pipeline order optimization (§4.2.3,
 * Appendix A.1). Views are nodes; the distance between two views is the
 * symmetric difference of their in-frustum Gaussian sets |S_i xor S_j|; the
 * shortest Hamiltonian *path* maximizes consecutive overlap. The solver is
 * stochastic local search: nearest-neighbour construction followed by
 * 2-opt sweeps and 3-opt (double-bridge) perturbations under a time budget.
 */

#ifndef CLM_SCHED_TSP_HPP
#define CLM_SCHED_TSP_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clm {

/** Dense symmetric distance matrix. */
class DistanceMatrix
{
  public:
    /** An n x n matrix initialized to zero. */
    explicit DistanceMatrix(size_t n);

    size_t size() const { return n_; }

    double at(size_t i, size_t j) const { return d_[i * n_ + j]; }

    /** Set d(i,j) and d(j,i). */
    void set(size_t i, size_t j, double v);

    /**
     * Verify metric-TSP preconditions (symmetry, zero diagonal,
     * non-negativity, triangle inequality); returns false on violation.
     * The symmetric-difference metric always satisfies these (A.1).
     */
    bool isMetric(double tolerance = 1e-9) const;

  private:
    size_t n_;
    std::vector<double> d_;
};

/** Solver knobs. */
struct TspConfig
{
    /** Wall-clock budget; the paper uses 1 ms per batch (A.1). */
    double time_limit_ms = 1.0;
    /** Enable 3-opt (double-bridge) perturbations after 2-opt converges. */
    bool use_3opt = true;
    /** Seed for the stochastic components. */
    uint64_t seed = 7;
};

/** Solver output. */
struct TspResult
{
    std::vector<int> tour;    //!< Permutation of 0..n-1 (open path).
    double length = 0.0;      //!< Sum of consecutive distances.
    int sweeps = 0;           //!< 2-opt improvement sweeps performed.
    int perturbations = 0;    //!< 3-opt perturbations attempted.
};

/** Length of an open path through @p tour. */
double tourLength(const DistanceMatrix &d, const std::vector<int> &tour);

/**
 * Solve the open-path TSP with nearest-neighbour + 2-opt/3-opt SLS.
 * Always returns a valid permutation, even on a zero time budget.
 */
TspResult solveTsp(const DistanceMatrix &d, const TspConfig &config = {});

/**
 * Exact open-path solution via Held-Karp dynamic programming. Exponential;
 * intended for n <= 15 (tests and the Appendix A.1 quality bench).
 */
TspResult solveTspExact(const DistanceMatrix &d);

} // namespace clm

#endif // CLM_SCHED_TSP_HPP
