#include "offload/batch_plan.hpp"

#include "util/logging.hpp"

namespace clm {

int
BatchPlan::add(PlanOp op)
{
    ops.push_back(std::move(op));
    return static_cast<int>(ops.size()) - 1;
}

double
BatchPlan::h2dBytes() const
{
    double n = 0;
    for (const auto &op : ops)
        n += op.h2d_bytes;
    return n;
}

double
BatchPlan::d2hBytes() const
{
    double n = 0;
    for (const auto &op : ops)
        n += op.d2h_bytes;
    return n;
}

void
BatchPlan::validate() const
{
    for (size_t i = 0; i < ops.size(); ++i) {
        for (int d : ops[i].deps) {
            CLM_ASSERT(d >= 0 && static_cast<size_t>(d) < ops.size(),
                       "op ", i, " depends on missing op ", d);
            CLM_ASSERT(static_cast<size_t>(d) < i,
                       "op ", i, " depends on later op ", d,
                       " (no forward deps allowed)");
        }
        CLM_ASSERT(ops[i].gaussians >= 0 && ops[i].pixels >= 0
                       && ops[i].h2d_bytes >= 0 && ops[i].d2h_bytes >= 0,
                   "negative op cost");
    }
}

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Cull:
        return "Cull";
      case OpKind::Schedule:
        return "Schedule";
      case OpKind::LoadParams:
        return "LoadParams";
      case OpKind::CopyCached:
        return "CopyCached";
      case OpKind::Forward:
        return "Forward";
      case OpKind::Backward:
        return "Backward";
      case OpKind::StoreGrads:
        return "StoreGrads";
      case OpKind::CarryGrads:
        return "CarryGrads";
      case OpKind::CpuAdam:
        return "CpuAdam";
      case OpKind::GpuAdam:
        return "GpuAdam";
      case OpKind::LoadAll:
        return "LoadAll";
      case OpKind::StoreAll:
        return "StoreAll";
      case OpKind::WriteCritical:
        return "WriteCritical";
    }
    return "?";
}

} // namespace clm
