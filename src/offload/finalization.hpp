/**
 * @file
 * Overlapped CPU Adam scheduling (§4.2.2): a Gaussian g is *finalized* by
 * the last microbatch that touches it, L_g = max{i | g in S_i}. Its Adam
 * update may run as soon as microbatch L_g's gradients reach CPU memory,
 * overlapping with the remaining microbatches' GPU work.
 */

#ifndef CLM_OFFLOAD_FINALIZATION_HPP
#define CLM_OFFLOAD_FINALIZATION_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clm {

/** The batch's finalization schedule. Microbatches are 1-based here,
 *  matching the paper's L_g = 0 convention for untouched Gaussians. */
struct FinalizationSchedule
{
    /**
     * finalized_after[j] = F_j: the Gaussians whose last touching
     * microbatch is j (1-based); F_0 holds the untouched Gaussians.
     * Each set ascending-sorted.
     */
    std::vector<std::vector<uint32_t>> finalized_after;

    /** Number of microbatches B (finalized_after has B+1 entries). */
    size_t microbatches() const
    { return finalized_after.empty() ? 0 : finalized_after.size() - 1; }

    /** Gaussians finalized strictly before the last microbatch — their
     *  Adam updates can be fully overlapped (F_1..F_{B-1}). */
    size_t overlappableUpdates() const;

    /** Gaussians finalized by the last microbatch (non-overlappable). */
    size_t trailingUpdates() const;

    /** Total touched Gaussians (excludes F_0). */
    size_t touched() const;
};

/**
 * Compute the finalization schedule.
 *
 * @param n_gaussians Total model size N (bounds the index space).
 * @param ordered_sets S_i in processing order, ascending-sorted.
 * @param include_untouched When true, F_0 enumerates every untouched
 *        Gaussian (costly for huge N); when false F_0 is left empty.
 */
FinalizationSchedule
computeFinalization(size_t n_gaussians,
                    const std::vector<std::vector<uint32_t>> &ordered_sets,
                    bool include_untouched = false);

} // namespace clm

#endif // CLM_OFFLOAD_FINALIZATION_HPP
