/**
 * @file
 * Precise Gaussian caching (§4.2.1): given the ordered microbatch sets
 * S_0..S_{B-1}, decide per microbatch which Gaussians to load over PCIe
 * (S_i \ S_{i-1}), which to copy GPU-to-GPU from the previous microbatch's
 * buffer (S_i intersect S_{i-1}), which gradients to flush to CPU memory
 * (S_i \ S_{i+1}) and which to keep on GPU for accumulation
 * (S_i intersect S_{i+1}).
 */

#ifndef CLM_OFFLOAD_CACHE_PLANNER_HPP
#define CLM_OFFLOAD_CACHE_PLANNER_HPP

#include <cstdint>
#include <vector>

#include "gaussian/attributes.hpp"

namespace clm {

/** Transfer decisions for one microbatch. All sets ascending-sorted. */
struct MicrobatchTransfers
{
    /** Loaded from pinned CPU memory over PCIe (new this microbatch). */
    std::vector<uint32_t> load_new;
    /** Copied GPU-to-GPU from the previous microbatch's param buffer. */
    std::vector<uint32_t> copy_cached;
    /** Gradients flushed to CPU after this microbatch (RMW-accumulated). */
    std::vector<uint32_t> store_grads;
    /** Gradients kept on GPU, accumulated into the next microbatch. */
    std::vector<uint32_t> carry_grads;
};

/** The full batch's transfer plan plus byte accounting. */
struct CachePlan
{
    std::vector<MicrobatchTransfers> mb;

    /** Bytes of non-critical parameters moved CPU -> GPU over PCIe. */
    size_t paramLoadBytes() const;
    /** Bytes of gradients written GPU -> CPU over PCIe. */
    size_t gradStoreBytes() const;
    /** Bytes of gradient old-values fetched CPU -> GPU by the
     *  read-modify-write accumulate kernel (§5.3). */
    size_t gradFetchBytes() const;
    /** Bytes copied GPU-to-GPU for cached Gaussians. */
    size_t cacheCopyBytes() const;
    /** Number of PCIe loads avoided by the cache. */
    size_t cacheHits() const;
    /** Total Gaussian-loads (PCIe + cached) == sum |S_i|. */
    size_t totalLoads() const;
};

/** Bytes of one Gaussian's gradient record (all 59 params). */
constexpr size_t kGradBytesPerGaussian =
    static_cast<size_t>(kParamsPerGaussian) * sizeof(float);

/**
 * Build the cache plan for ordered sets.
 *
 * @param ordered_sets S_i in processing order, each ascending-sorted.
 * @param enable_cache When false, everything is loaded over PCIe and every
 *        gradient is flushed — the "No Cache" ablation of Figure 14.
 */
CachePlan planCache(const std::vector<std::vector<uint32_t>> &ordered_sets,
                    bool enable_cache = true);

} // namespace clm

#endif // CLM_OFFLOAD_CACHE_PLANNER_HPP
