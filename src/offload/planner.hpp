/**
 * @file
 * Batch planner: turns a batch of views (with their in-frustum sets) into
 * the op-DAG of one of the four evaluated systems — GPU-only baseline,
 * enhanced baseline (pre-rendering culling), naive offloading
 * (ZeRO-Offload-style, Figure 3) and CLM (Figure 6). For CLM the planner
 * runs ordering (§4.2.3), Gaussian caching (§4.2.1) and finalization
 * (§4.2.2), and emits the 1F1B-interleaved two-stream schedule of §5.3.
 */

#ifndef CLM_OFFLOAD_PLANNER_HPP
#define CLM_OFFLOAD_PLANNER_HPP

#include <cstdint>
#include <vector>

#include "math/vec.hpp"
#include "offload/batch_plan.hpp"
#include "offload/cache_planner.hpp"
#include "offload/finalization.hpp"
#include "sched/ordering.hpp"

namespace clm {

/** The four systems compared throughout §6. */
enum class SystemKind
{
    Baseline,            //!< GPU-only, fused culling (Grendel + gsplat).
    EnhancedBaseline,    //!< GPU-only + pre-rendering frustum culling.
    NaiveOffload,        //!< Figure 3: load-all / train / store-all / Adam.
    Clm,                 //!< Full CLM pipeline.
};

/** Display name used by the benches (matches the paper's legends). */
const char *systemName(SystemKind s);

/** Planner knobs (CLM ablations toggle these). */
struct PlannerConfig
{
    SystemKind system = SystemKind::Clm;
    OrderingStrategy ordering = OrderingStrategy::Tsp;
    bool enable_cache = true;        //!< Precise Gaussian caching §4.2.1.
    bool overlap_adam = true;        //!< Overlapped CPU Adam §4.2.2.
    TspConfig tsp;                   //!< 1 ms budget by default.
    uint64_t seed = 1;
};

/** One batch's workload description. */
struct BatchWorkload
{
    /** Per-view in-frustum sets (ascending-sorted), in dataset order. */
    std::vector<std::vector<uint32_t>> sets;
    /** Per-view camera centers (needed for Camera ordering). */
    std::vector<Vec3> camera_centers;
    /** Synthetic model size the sets were measured against. */
    size_t n_synthetic = 0;
    /** Paper-scale model size the plan should be costed at; the planner
     *  scales all Gaussian counts/bytes by n_target / n_synthetic. */
    double n_target = 0;
    /** Pixels per rendered view (at the scene's native resolution). */
    double pixels_per_view = 0;
};

/** Planner output: the DAG plus the intermediate analyses benches report. */
struct BatchPlanResult
{
    BatchPlan plan;
    std::vector<int> order;          //!< Microbatch processing order.
    CachePlan cache;                 //!< At synthetic scale.
    FinalizationSchedule fin;        //!< At synthetic scale.
    double scale = 1.0;              //!< n_target / n_synthetic.
    double scheduling_seconds = 0;   //!< Measured planning wall time.

    /** Paper-scale PCIe CPU->GPU parameter bytes (the Figure 14 metric). */
    double paramLoadBytesScaled() const;
};

/** Build the plan for one batch under @p config. */
BatchPlanResult planBatch(const PlannerConfig &config,
                          const BatchWorkload &workload);

} // namespace clm

#endif // CLM_OFFLOAD_PLANNER_HPP
