/**
 * @file
 * The unified offload data path (§4-§5): one asynchronous engine that owns
 * the pinned host pool, the double-buffered device staging rows, the
 * selective gather/cached-copy/RMW-scatter kernels, an optional prefetch
 * stage that stages microbatch k+1 on a worker thread while microbatch k
 * computes, and the §5.4 dedicated finalization (CPU Adam) thread with its
 * pinned signal slots. Every trainer is a thin policy over this engine:
 * CLM enables prefetch + caching, naive offloading disables both and
 * stages the whole model as a single microbatch. All stage wall times are
 * stamped into a StageTimings record that sim/metrics converts into the
 * Figure 13/15 measured shapes.
 */

#ifndef CLM_OFFLOAD_TRANSFER_ENGINE_HPP
#define CLM_OFFLOAD_TRANSFER_ENGINE_HPP

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "offload/cache_planner.hpp"
#include "offload/finalization.hpp"
#include "offload/pinned_pool.hpp"
#include "offload/selective_copy.hpp"
#include "sim/stage_timings.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace clm {

class GaussianModel;
struct GaussianGrads;

/** Policy knobs distinguishing the trainers that share the engine. */
struct TransferEngineConfig
{
    /** Stage microbatch k+1 on a worker thread while k computes — the
     *  copy/compute overlap of §5.3. Staging order and arithmetic are
     *  identical to synchronous staging, so results are bit-equal. */
    bool prefetch = true;
    /** Run finalization on the dedicated CPU Adam thread (§5.4),
     *  handshaking through the pinned signal slots. */
    bool async_finalize = false;
    /** Number of pinned completion-signal slots (§5.4). */
    size_t signal_slots = 64;
};

/**
 * See the file comment. Batch protocol:
 *
 *   engine.beginBatch(ordered_sets, cache_plan, fin_schedule);
 *   for i in 0..B-1:
 *       DeviceBuffer &buf = engine.acquire(i);   // staged params, zeroed
 *                                                // grads, carried grads
 *       ... render from buf, accumulate into buf.gradRow(r) ...
 *       engine.release(i);       // RMW scatter + dispatch finalization
 *   engine.endBatch();           // drain prefetch + finalize threads
 *
 * Trainers without a finalization schedule (naive offloading) pass an
 * empty schedule and call finalizeNow() with the touched set instead.
 */
class TransferEngine
{
  public:
    /** Runs subset CPU Adam for a finalized set; returns rows updated.
     *  Supplied by the trainer (it owns the master model + optimizer). */
    using FinalizeFn = std::function<size_t(const std::vector<uint32_t> &)>;

    explicit TransferEngine(size_t n, TransferEngineConfig config = {});

    ~TransferEngine();

    TransferEngine(const TransferEngine &) = delete;
    TransferEngine &operator=(const TransferEngine &) = delete;

    /** Install the finalization callback (required before any batch that
     *  dispatches finalization). */
    void setFinalizeFn(FinalizeFn fn) { finalize_fn_ = std::move(fn); }

    /** Quiesce all engine threads and rebuild pool + buffers for a model
     *  of @p n Gaussians (densification / topology changes). */
    void reset(size_t n);

    /** Populate every pinned parameter record from @p model. */
    void uploadParams(const GaussianModel &model);

    /** @name Batch protocol (see class comment) */
    /// @{
    void beginBatch(std::vector<std::vector<uint32_t>> ordered_sets,
                    CachePlan cache, FinalizationSchedule fin);
    DeviceBuffer &acquire(size_t i);
    void release(size_t i);
    /** Dispatch finalization for an explicit set (inline or on the Adam
     *  thread per config) — the naive trainer's batch-end path. */
    void finalizeNow(std::vector<uint32_t> fin);
    void endBatch();
    /// @}

    /** Block until prefetch staging and the Adam thread are idle. Safe to
     *  call between batches (densification, checkpointing). */
    void drain();

    /** Per-batch record counters, valid after endBatch(). */
    struct Counters
    {
        size_t records_loaded = 0;    //!< Pinned->device gathers (PCIe).
        size_t cache_hits = 0;        //!< Device-to-device cached copies.
        size_t records_stored = 0;    //!< RMW gradient scatters (PCIe).
        size_t finalized = 0;         //!< Gaussians whose Adam step ran.
    };
    const Counters &counters() const { return counters_; }

    const PinnedPool &pool() const { return pool_; }
    PinnedPool &pool() { return pool_; }

    /** Total pinned bytes held (the Table 6 quantity). */
    size_t pinnedBytes() const { return pool_.bytes(); }

    /** Peak rows ever bound in one staging buffer (memory accounting). */
    size_t peakBufferRows() const { return peak_buffer_rows_; }

    /** Measured stage timers (accumulated; call between batches). */
    const StageTimings &timings() const { return timings_; }

    /** Record stage time measured outside the engine (e.g. planning). */
    void addStageTime(TrainStage stage, double seconds);

    /** Discard accumulated stage timers. */
    void resetTimings();

  private:
    /** Stage microbatch @p i: bind, gather new records, copy cached rows
     *  from the previous buffer, zero gradient rows. Runs inline or on
     *  the staging worker. Never touches gradient rows of other buffers,
     *  so it is safe concurrently with compute on microbatch i-1. */
    void stage(size_t i);

    /** Dispatch finalization of @p fin (inline, or signal + enqueue for
     *  the Adam thread as in §5.4). */
    void dispatchFinalize(std::vector<uint32_t> fin, size_t slot);

    /** Run the finalize callback under the Finalize stage timer. */
    size_t runFinalize(const std::vector<uint32_t> &fin);

    /** §5.4 dedicated-thread loop: wait on the signal slot, run subset
     *  Adam, repeat. */
    void adamThreadLoop();

    /** Block until every queued finalization has been applied. */
    void drainAdamThread();

    void stopAdamThread();

    TransferEngineConfig config_;
    FinalizeFn finalize_fn_;
    PinnedPool pool_;
    std::array<DeviceBuffer, 2> buffers_;
    std::unique_ptr<ThreadPool> staging_pool_;    //!< 1 worker (prefetch).

    // Batch-scoped state.
    bool in_batch_ = false;
    std::vector<std::vector<uint32_t>> sets_;
    CachePlan cache_;
    FinalizationSchedule fin_;
    Counters counters_;
    Timer batch_timer_;
    Timer compute_timer_;        //!< Runs from acquire() to release().
    double pending_wait_ = 0;    //!< Staging stall of the acquired mb.
    double last_scatter_t_ = 0;     //!< Batch-clock time of last scatter.
    double last_finalize_t_ = 0;    //!< Batch-clock time of last Adam end.

    size_t peak_buffer_rows_ = 0;

    // Stage timers, written from the main, staging and Adam threads.
    StageTimings timings_;
    mutable std::mutex timings_mutex_;

    // Dedicated CPU Adam thread state (active when async_finalize).
    struct FinalizeJob
    {
        std::vector<uint32_t> fin;
        size_t signal_slot;
    };
    std::thread adam_thread_;
    std::mutex adam_mutex_;
    std::condition_variable adam_cv_;
    std::queue<FinalizeJob> adam_jobs_;
    size_t adam_pending_ = 0;
    bool adam_stop_ = false;
    std::atomic<size_t> async_finalized_{0};
};

/** Pack one Gaussian's gradient row into the 59-float pinned record
 *  layout: position, log-scale, rotation, SH, opacity. */
void packGradRecord(const GaussianGrads &grads, size_t i, float *out);

/** Unpack a 59-float gradient record into @p grads at row @p i. */
void unpackGradRecord(const float *in, GaussianGrads &grads, size_t i);

/** Accumulate the microbatch's backprop results into the staging buffer's
 *  gradient rows: for every bound row r, pack the gradient record of
 *  global index indices()[r] from @p grads and add it into gradRow(r) —
 *  the device-side gradient accumulation feeding the RMW scatter. */
void accumulateGradRows(const GaussianGrads &grads, DeviceBuffer &buf);

/** Same, restricted to the bound subset @p indices (ascending) — used
 *  when one staging binding hosts several rendered subsets (the naive
 *  trainer's per-view accumulation into the whole-model binding). */
void accumulateGradRows(const GaussianGrads &grads, DeviceBuffer &buf,
                        const std::vector<uint32_t> &indices);

} // namespace clm

#endif // CLM_OFFLOAD_TRANSFER_ENGINE_HPP
