#include "offload/transfer_engine.hpp"

#include <algorithm>
#include <cstring>

#include "gaussian/model.hpp"
#include "util/logging.hpp"

namespace clm {

void
packGradRecord(const GaussianGrads &grads, size_t i, float *out)
{
    out[0] = grads.d_position[i].x;
    out[1] = grads.d_position[i].y;
    out[2] = grads.d_position[i].z;
    out[3] = grads.d_log_scale[i].x;
    out[4] = grads.d_log_scale[i].y;
    out[5] = grads.d_log_scale[i].z;
    out[6] = grads.d_rotation[i].w;
    out[7] = grads.d_rotation[i].x;
    out[8] = grads.d_rotation[i].y;
    out[9] = grads.d_rotation[i].z;
    std::memcpy(out + kShOffset, &grads.d_sh[i * kShDim],
                kShDim * sizeof(float));
    out[kOpacityOffset] = grads.d_opacity[i];
}

void
unpackGradRecord(const float *in, GaussianGrads &grads, size_t i)
{
    grads.d_position[i] = {in[0], in[1], in[2]};
    grads.d_log_scale[i] = {in[3], in[4], in[5]};
    grads.d_rotation[i] = {in[6], in[7], in[8], in[9]};
    std::memcpy(&grads.d_sh[i * kShDim], in + kShOffset,
                kShDim * sizeof(float));
    grads.d_opacity[i] = in[kOpacityOffset];
}

void
accumulateGradRows(const GaussianGrads &grads, DeviceBuffer &buf)
{
    const std::vector<uint32_t> &bound = buf.indices();
    for (size_t r = 0; r < bound.size(); ++r) {
        float rec[kParamsPerGaussian];
        packGradRecord(grads, bound[r], rec);
        float *row = buf.gradRow(r);
        for (int k = 0; k < kParamsPerGaussian; ++k)
            row[k] += rec[k];
    }
}

void
accumulateGradRows(const GaussianGrads &grads, DeviceBuffer &buf,
                   const std::vector<uint32_t> &indices)
{
    const std::vector<uint32_t> &bound = buf.indices();
    size_t r = 0;
    for (uint32_t g : indices) {
        while (r < bound.size() && bound[r] < g)
            ++r;
        CLM_ASSERT(r < bound.size() && bound[r] == g,
                   "gradient target ", g, " not bound in buffer");
        float rec[kParamsPerGaussian];
        packGradRecord(grads, g, rec);
        float *row = buf.gradRow(r);
        for (int k = 0; k < kParamsPerGaussian; ++k)
            row[k] += rec[k];
    }
}

TransferEngine::TransferEngine(size_t n, TransferEngineConfig config)
    : config_(config), pool_(n, config.signal_slots),
      buffers_{DeviceBuffer(n), DeviceBuffer(n)}
{
    if (config_.prefetch)
        staging_pool_ = std::make_unique<ThreadPool>(1);
    if (config_.async_finalize)
        adam_thread_ = std::thread([this] { adamThreadLoop(); });
}

TransferEngine::~TransferEngine()
{
    stopAdamThread();
}

void
TransferEngine::stopAdamThread()
{
    if (!adam_thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(adam_mutex_);
        adam_stop_ = true;
    }
    adam_cv_.notify_all();
    adam_thread_.join();
}

void
TransferEngine::reset(size_t n)
{
    drain();
    pool_ = PinnedPool(n, config_.signal_slots);
    buffers_ = {DeviceBuffer(n), DeviceBuffer(n)};
}

void
TransferEngine::uploadParams(const GaussianModel &model)
{
    CLM_ASSERT(model.size() == pool_.size(),
               "upload size mismatch: ", model.size(), " vs ",
               pool_.size());
    pool_.uploadParams(model);
    pool_.zeroGradients();
}

void
TransferEngine::addStageTime(TrainStage stage, double seconds)
{
    std::lock_guard<std::mutex> lock(timings_mutex_);
    timings_.add(stage, seconds);
}

void
TransferEngine::resetTimings()
{
    std::lock_guard<std::mutex> lock(timings_mutex_);
    timings_.reset();
}

void
TransferEngine::beginBatch(std::vector<std::vector<uint32_t>> ordered_sets,
                           CachePlan cache, FinalizationSchedule fin)
{
    CLM_ASSERT(!in_batch_, "beginBatch inside an open batch");
    CLM_ASSERT(cache.mb.size() == ordered_sets.size(),
               "cache plan does not cover the batch");
    CLM_ASSERT(fin.finalized_after.empty() || finalize_fn_,
               "finalization schedule without a finalize callback");
    sets_ = std::move(ordered_sets);
    cache_ = std::move(cache);
    fin_ = std::move(fin);
    counters_ = {};
    last_scatter_t_ = 0;
    last_finalize_t_ = 0;
    in_batch_ = true;
    batch_timer_.reset();
    // The first microbatch has nothing to overlap with; prefetch it now
    // so acquire(0) measures only the unavoidable stall.
    if (config_.prefetch && !sets_.empty())
        staging_pool_->submit([this] { stage(0); });
}

void
TransferEngine::stage(size_t i)
{
    DeviceBuffer &buf = buffers_[i % 2];
    const MicrobatchTransfers &t = cache_.mb[i];
    Timer timer;
    buf.bind(sets_[i]);
    // Selective load (PCIe) from the pinned pool (§4.2.1, §5.2).
    gatherParams(pool_, buf, t.load_new);
    addStageTime(TrainStage::Gather, timer.seconds());
    counters_.records_loaded += t.load_new.size();
    // Cache copy (GPU-GPU) from the previous microbatch's buffer. Its
    // parameter rows are immutable once staged, so this is safe while
    // microbatch i-1 is still computing (it only writes gradient rows).
    if (i > 0 && !t.copy_cached.empty()) {
        timer.reset();
        copyCachedParams(buffers_[(i - 1) % 2], buf, t.copy_cached);
        addStageTime(TrainStage::CacheCopy, timer.seconds());
    }
    counters_.cache_hits += t.copy_cached.size();
    buf.zeroGrads();
}

DeviceBuffer &
TransferEngine::acquire(size_t i)
{
    CLM_ASSERT(in_batch_, "acquire outside a batch");
    CLM_ASSERT(i < sets_.size(), "microbatch ", i, " of ", sets_.size());
    // Wait for staging (prefetch: the stall is the exposed transfer
    // time; synchronous: staging runs right here on the critical path).
    Timer wait_timer;
    if (config_.prefetch)
        staging_pool_->wait();
    else
        stage(i);
    pending_wait_ = wait_timer.seconds();

    DeviceBuffer &buf = buffers_[i % 2];
    // Take over carried gradient accumulations from the previous
    // microbatch (§5.3). Must happen before the previous buffer is
    // rebound by the next prefetch below.
    if (i > 0 && !cache_.mb[i - 1].carry_grads.empty()) {
        Timer timer;
        accumulateCarriedGrads(buffers_[(i - 1) % 2], buf,
                               cache_.mb[i - 1].carry_grads);
        addStageTime(TrainStage::Carry, timer.seconds());
    }
    // Stage microbatch i+1 on the worker while i computes (§5.3). Reads
    // only buf's parameter rows and the pinned parameter records — both
    // immutable until the next batch — so it overlaps compute, scatter
    // and finalization safely (finalized Gaussians never reappear in a
    // later set by the §4.2.2 finalization property).
    if (config_.prefetch && i + 1 < sets_.size())
        staging_pool_->submit([this, next = i + 1] { stage(next); });

    peak_buffer_rows_ = std::max(peak_buffer_rows_, buf.rows());
    compute_timer_.reset();
    return buf;
}

void
TransferEngine::release(size_t i)
{
    CLM_ASSERT(in_batch_, "release outside a batch");
    double compute = compute_timer_.seconds();
    addStageTime(TrainStage::Compute, compute);
    {
        std::lock_guard<std::mutex> lock(timings_mutex_);
        timings_.noteMicrobatch(pending_wait_, compute);
    }

    DeviceBuffer &buf = buffers_[i % 2];
    const MicrobatchTransfers &t = cache_.mb[i];
    // Selective RMW gradient offload for rows not needed next (§5.3).
    Timer timer;
    scatterAccumulateGrads(buf, pool_, t.store_grads);
    addStageTime(TrainStage::Scatter, timer.seconds());
    counters_.records_stored += t.store_grads.size();
    last_scatter_t_ = batch_timer_.seconds();

    // Overlapped CPU Adam: everything finalized by this microbatch
    // (1-based index i+1 in the schedule).
    if (i + 1 < fin_.finalized_after.size())
        dispatchFinalize(std::move(fin_.finalized_after[i + 1]),
                         i % config_.signal_slots);
}

void
TransferEngine::finalizeNow(std::vector<uint32_t> fin)
{
    CLM_ASSERT(in_batch_, "finalizeNow outside a batch");
    dispatchFinalize(std::move(fin), 0);
}

void
TransferEngine::endBatch()
{
    CLM_ASSERT(in_batch_, "endBatch without beginBatch");
    if (staging_pool_)
        staging_pool_->wait();
    drainAdamThread();
    counters_.finalized += async_finalized_.exchange(0);
    {
        std::lock_guard<std::mutex> lock(timings_mutex_);
        timings_.trailing_adam_seconds +=
            std::max(0.0, last_finalize_t_ - last_scatter_t_);
        timings_.batch_seconds += batch_timer_.seconds();
    }
    in_batch_ = false;
}

void
TransferEngine::drain()
{
    if (staging_pool_)
        staging_pool_->wait();
    drainAdamThread();
}

size_t
TransferEngine::runFinalize(const std::vector<uint32_t> &fin)
{
    CLM_ASSERT(finalize_fn_, "finalize without a callback");
    Timer timer;
    size_t updated = finalize_fn_(fin);
    double secs = timer.seconds();
    double at = batch_timer_.seconds();
    {
        std::lock_guard<std::mutex> lock(timings_mutex_);
        timings_.add(TrainStage::Finalize, secs);
        timings_.finalize_inline |= !config_.async_finalize;
        last_finalize_t_ = std::max(last_finalize_t_, at);
    }
    return updated;
}

void
TransferEngine::dispatchFinalize(std::vector<uint32_t> fin, size_t slot)
{
    if (fin.empty())
        return;
    if (!config_.async_finalize) {
        counters_.finalized += runFinalize(fin);
        return;
    }
    // "DMA" the completion signal, then wake the Adam thread (§5.4).
    *pool_.signalSlot(slot) = 1;
    {
        std::lock_guard<std::mutex> lock(adam_mutex_);
        adam_jobs_.push(FinalizeJob{std::move(fin), slot});
        ++adam_pending_;
    }
    adam_cv_.notify_one();
}

void
TransferEngine::adamThreadLoop()
{
    for (;;) {
        FinalizeJob job;
        {
            std::unique_lock<std::mutex> lock(adam_mutex_);
            adam_cv_.wait(lock, [this] {
                return adam_stop_ || !adam_jobs_.empty();
            });
            if (adam_stop_ && adam_jobs_.empty())
                return;
            job = std::move(adam_jobs_.front());
            adam_jobs_.pop();
        }
        // Honour the §5.4 handshake: the communication "stream" set the
        // gradient-completion flag via DMA before enqueueing the job.
        uint32_t *signal = pool_.signalSlot(job.signal_slot);
        CLM_ASSERT(*signal == 1u, "adam thread woke before gradients");
        async_finalized_ += runFinalize(job.fin);
        *signal = 0;
        {
            std::lock_guard<std::mutex> lock(adam_mutex_);
            --adam_pending_;
            if (adam_pending_ == 0)
                adam_cv_.notify_all();
        }
    }
}

void
TransferEngine::drainAdamThread()
{
    if (!config_.async_finalize)
        return;
    std::unique_lock<std::mutex> lock(adam_mutex_);
    adam_cv_.wait(lock, [this] { return adam_pending_ == 0; });
}

} // namespace clm
