/**
 * @file
 * Batch-level in-frustum set computation: for each view of a batch, the
 * ascending-sorted set S_i of Gaussian indices whose 3-sigma ellipsoids
 * intersect the view frustum. This is the ahead-of-time information (§3,
 * observation i) every CLM optimization builds on.
 */

#ifndef CLM_OFFLOAD_FRUSTUM_SETS_HPP
#define CLM_OFFLOAD_FRUSTUM_SETS_HPP

#include <cstdint>
#include <vector>

#include "gaussian/model.hpp"
#include "render/camera.hpp"

namespace clm {

/** Per-view in-frustum sets plus summary statistics. */
struct FrustumSets
{
    /** S_i for each view, ascending-sorted. */
    std::vector<std::vector<uint32_t>> sets;
    /** Total Gaussians in the model (the N of rho_i = |S_i| / N). */
    size_t total_gaussians = 0;

    /** Per-view sparsity values rho_i. */
    std::vector<double> sparsities() const;

    /** Union of all sets (ascending) — Gaussians touched by the batch. */
    std::vector<uint32_t> unionSet() const;
};

/** Compute S_i for every camera (reads only critical attributes). */
FrustumSets computeFrustumSets(const GaussianModel &model,
                               const std::vector<Camera> &cameras);

/** Subset of @p all selected by @p view_indices. */
FrustumSets selectViews(const FrustumSets &all,
                        const std::vector<int> &view_indices);

} // namespace clm

#endif // CLM_OFFLOAD_FRUSTUM_SETS_HPP
