/**
 * @file
 * Host-side pinned-memory pool for offloaded Gaussian state (§5.2, §5.4).
 * Parameter records are concatenated and padded to cache-line multiples so
 * each Gaussian's non-critical attributes live in contiguous, aligned
 * memory (the layout the selective loading kernel gathers from); gradient
 * records hold all 59 parameter gradients and are accumulated in place by
 * the RMW store kernel. Optimizer state is intentionally *not* pinned —
 * matching the paper's Table 6 accounting.
 */

#ifndef CLM_OFFLOAD_PINNED_POOL_HPP
#define CLM_OFFLOAD_PINNED_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gaussian/attributes.hpp"

namespace clm {

class GaussianModel;

/** Pinned-pool sizing policy, exposed for the Table 6 bench. */
struct PinnedLayout
{
    /** Stride of one non-critical parameter record (cache-line padded). */
    static constexpr size_t paramStride() { return kPaddedNonCriticalBytes; }

    /** Stride of one gradient record: 59 floats, cache-line padded. */
    static constexpr size_t
    gradStride()
    {
        size_t raw = kParamsPerGaussian * sizeof(float);
        return ((raw + kCacheLineBytes - 1) / kCacheLineBytes)
               * kCacheLineBytes;
    }

    /** Total pinned bytes for @p n Gaussians (params + grads + signals). */
    static size_t totalBytes(size_t n, size_t n_signal_slots = 64);
};

/**
 * The pool itself. In the real system this memory is cudaHostAlloc'd; here
 * it is page-aligned host memory with identical layout, so the selective
 * copy kernels and the functional trainers exercise the same addressing.
 */
class PinnedPool
{
  public:
    /** Allocate records for @p n Gaussians, zero-initialized. */
    explicit PinnedPool(size_t n, size_t n_signal_slots = 64);

    size_t size() const { return n_; }

    /** Non-critical parameter record (49 floats + padding) of Gaussian i. */
    float *paramRecord(size_t i);
    const float *paramRecord(size_t i) const;

    /** Gradient record (59 floats + padding) of Gaussian i. */
    float *gradRecord(size_t i);
    const float *gradRecord(size_t i) const;

    /**
     * Signal buffer slot (§5.4): the communication stream writes a
     * completion flag here via DMA; the CPU Adam thread spins on it.
     */
    uint32_t *signalSlot(size_t slot);

    /** Total pinned bytes held (the Table 6 quantity). */
    size_t bytes() const { return bytes_; }

    /** Zero every gradient record. */
    void zeroGradients();

    /** Populate all parameter records from @p model. */
    void uploadParams(const GaussianModel &model);

    /** Write back all parameter records into @p model. */
    void downloadParams(GaussianModel &model) const;

  private:
    size_t n_ = 0;
    size_t n_signals_ = 0;
    size_t bytes_ = 0;
    std::unique_ptr<std::byte[]> storage_;
    std::byte *params_ = nullptr;
    std::byte *grads_ = nullptr;
    std::byte *signals_ = nullptr;
};

} // namespace clm

#endif // CLM_OFFLOAD_PINNED_POOL_HPP
