/**
 * @file
 * Functional equivalents of the selective loading / gradient offloading
 * kernels (§5.2, §5.3): batched gather of sparse pinned-memory records
 * into dense device buffers, scatter of device gradients back with
 * read-modify-write accumulation, and dense row copies for the GPU-side
 * Gaussian cache. These kernels are driven exclusively by the
 * TransferEngine (offload/transfer_engine.hpp); trainers never call them
 * directly. The batched forms are microbenchmarked against naive
 * per-record copies in bench/micro_selective_copy.
 */

#ifndef CLM_OFFLOAD_SELECTIVE_COPY_HPP
#define CLM_OFFLOAD_SELECTIVE_COPY_HPP

#include <cstdint>
#include <vector>

#include "offload/pinned_pool.hpp"
#include "util/logging.hpp"

namespace clm {

/**
 * Dense device-side staging buffer for one microbatch: row r holds the
 * non-critical parameters (and gradient slot) of the r-th in-frustum
 * Gaussian. Two of these form CLM's double buffer.
 */
class DeviceBuffer
{
  public:
    /** Allocate capacity for @p capacity Gaussians. */
    explicit DeviceBuffer(size_t capacity);

    size_t capacity() const { return capacity_; }

    /** Bind the buffer to an index set (rows follow @p indices order). */
    void bind(std::vector<uint32_t> indices);

    /** Currently bound global indices (ascending). */
    const std::vector<uint32_t> &indices() const { return indices_; }

    /** Row position of global index @p g, or -1 when absent. This is the
     *  single not-found convention: every caller that can miss checks for
     *  int64_t -1; callers that must hit use boundRow(). */
    int64_t rowOf(uint32_t g) const;

    /** Row position of global index @p g, asserting that it is bound.
     *  Use instead of rowOf() wherever absence would be a logic error. */
    size_t boundRow(uint32_t g) const;

    /** Non-critical parameter row r (49 floats). */
    float *paramRow(size_t r)
    {
        CLM_DBG_ASSERT(r < rows(), "param row ", r, " of ", rows());
        return &params_[r * kNonCriticalDim];
    }
    const float *paramRow(size_t r) const
    {
        CLM_DBG_ASSERT(r < rows(), "param row ", r, " of ", rows());
        return &params_[r * kNonCriticalDim];
    }

    /** Gradient row r (59 floats). */
    float *gradRow(size_t r)
    {
        CLM_DBG_ASSERT(r < rows(), "grad row ", r, " of ", rows());
        return &grads_[r * kParamsPerGaussian];
    }
    const float *gradRow(size_t r) const
    {
        CLM_DBG_ASSERT(r < rows(), "grad row ", r, " of ", rows());
        return &grads_[r * kParamsPerGaussian];
    }

    /** Number of bound rows. */
    size_t rows() const { return indices_.size(); }

    /** Zero all gradient rows. */
    void zeroGrads();

  private:
    size_t capacity_;
    std::vector<uint32_t> indices_;
    std::vector<float> params_;
    std::vector<float> grads_;
};

/**
 * Selective loading "kernel": gather the records of @p rows (positions in
 * dst's bound index list whose data must come from pinned memory) from
 * @p pool into @p dst's parameter rows.
 */
void gatherParams(const PinnedPool &pool, DeviceBuffer &dst,
                  const std::vector<uint32_t> &load_indices);

/**
 * Cache-copy "kernel": for every index in @p cached_indices, copy its
 * parameter row from @p src (previous microbatch) into @p dst.
 */
void copyCachedParams(const DeviceBuffer &src, DeviceBuffer &dst,
                      const std::vector<uint32_t> &cached_indices);

/**
 * Gradient offloading "kernel" with in-register accumulation (§5.3):
 * for every index in @p store_indices, fetch the pinned gradient record,
 * add the device row, and store the sum back.
 */
void scatterAccumulateGrads(const DeviceBuffer &src, PinnedPool &pool,
                            const std::vector<uint32_t> &store_indices);

/**
 * Carry-accumulate "kernel": for every index in @p carry_indices (present
 * in both buffers), add src's gradient row into dst's gradient row.
 */
void accumulateCarriedGrads(const DeviceBuffer &src, DeviceBuffer &dst,
                            const std::vector<uint32_t> &carry_indices);

} // namespace clm

#endif // CLM_OFFLOAD_SELECTIVE_COPY_HPP
