#include "offload/planner.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace clm {

namespace {

/** Bytes written back for one updated Gaussian's critical attributes. */
constexpr double kCriticalWriteBytes =
    static_cast<double>(kCriticalBytesPerGaussian);

std::string
mbLabel(const char *prefix, int i)
{
    return std::string(prefix) + " " + std::to_string(i);
}

/** GPU-only baselines: per-image forward/backward (+ optional pre-cull). */
BatchPlanResult
planGpuOnly(const PlannerConfig &config, const BatchWorkload &wl,
            bool enhanced)
{
    (void)config;
    BatchPlanResult r;
    size_t b = wl.sets.size();
    r.scale = wl.n_target / std::max<double>(wl.n_synthetic, 1);
    r.order.resize(b);
    for (size_t i = 0; i < b; ++i)
        r.order[i] = static_cast<int>(i);

    BatchPlan &plan = r.plan;
    plan.batch_size = static_cast<int>(b);

    int cull = -1;
    if (enhanced) {
        PlanOp op;
        op.kind = OpKind::Cull;
        op.engine = EngineId::ComputeStream;
        op.gaussians = wl.n_target;
        op.label = "cull";
        cull = plan.add(std::move(op));
    }
    double union_touched = 0;
    {
        std::vector<uint32_t> u;
        for (const auto &s : wl.sets)
            u.insert(u.end(), s.begin(), s.end());
        std::sort(u.begin(), u.end());
        u.erase(std::unique(u.begin(), u.end()), u.end());
        union_touched = static_cast<double>(u.size()) * r.scale;
    }

    for (size_t i = 0; i < b; ++i) {
        // Without pre-rendering culling the kernels take all N Gaussians
        // as input (§5.1); with it, only |S_i|.
        double g = enhanced
                       ? static_cast<double>(wl.sets[i].size()) * r.scale
                       : wl.n_target;
        PlanOp fwd;
        fwd.kind = OpKind::Forward;
        fwd.engine = EngineId::ComputeStream;
        fwd.microbatch = static_cast<int>(i);
        fwd.gaussians = g;
        fwd.pixels = wl.pixels_per_view;
        if (cull >= 0)
            fwd.deps.push_back(cull);
        fwd.label = mbLabel("fwd", static_cast<int>(i));
        int f = plan.add(std::move(fwd));

        PlanOp bwd;
        bwd.kind = OpKind::Backward;
        bwd.engine = EngineId::ComputeStream;
        bwd.microbatch = static_cast<int>(i);
        // The baseline's backward touches the full input tensor even for
        // out-of-frustum Gaussians (§5.1).
        bwd.gaussians = g;
        bwd.pixels = wl.pixels_per_view;
        bwd.deps.push_back(f);
        bwd.label = mbLabel("bwd", static_cast<int>(i));
        plan.add(std::move(bwd));
    }

    PlanOp adam;
    adam.kind = OpKind::GpuAdam;
    adam.engine = EngineId::ComputeStream;
    adam.gaussians = union_touched;
    adam.dram_bytes =
        union_touched * kModelStateBytesPerGaussian * 2.0;    // r/w states
    adam.label = "gpu adam";
    plan.add(std::move(adam));

    plan.validate();
    return r;
}

/** Naive offloading (Figure 3): load all / train / store all / CPU Adam. */
BatchPlanResult
planNaive(const PlannerConfig &config, const BatchWorkload &wl)
{
    (void)config;
    BatchPlanResult r;
    size_t b = wl.sets.size();
    r.scale = wl.n_target / std::max<double>(wl.n_synthetic, 1);
    r.order.resize(b);
    for (size_t i = 0; i < b; ++i)
        r.order[i] = static_cast<int>(i);

    BatchPlan &plan = r.plan;
    plan.batch_size = static_cast<int>(b);

    // Load ALL parameters (59 floats each) to the GPU.
    PlanOp load;
    load.kind = OpKind::LoadAll;
    load.engine = EngineId::CommStream;
    load.gaussians = wl.n_target;
    load.h2d_bytes = wl.n_target * kParamBytesPerGaussian;
    load.label = "load all params";
    int ld = plan.add(std::move(load));

    // Naive offloading adopts pre-rendering frustum culling too (§6.1).
    PlanOp cull;
    cull.kind = OpKind::Cull;
    cull.engine = EngineId::ComputeStream;
    cull.gaussians = wl.n_target;
    cull.deps.push_back(ld);
    cull.label = "cull";
    int cu = plan.add(std::move(cull));

    int last_bwd = cu;
    for (size_t i = 0; i < b; ++i) {
        double g = static_cast<double>(wl.sets[i].size()) * r.scale;
        PlanOp fwd;
        fwd.kind = OpKind::Forward;
        fwd.engine = EngineId::ComputeStream;
        fwd.microbatch = static_cast<int>(i);
        fwd.gaussians = g;
        fwd.pixels = wl.pixels_per_view;
        fwd.deps.push_back(cu);
        fwd.label = mbLabel("fwd", static_cast<int>(i));
        int f = plan.add(std::move(fwd));

        PlanOp bwd;
        bwd.kind = OpKind::Backward;
        bwd.engine = EngineId::ComputeStream;
        bwd.microbatch = static_cast<int>(i);
        bwd.gaussians = g;
        bwd.pixels = wl.pixels_per_view;
        bwd.deps.push_back(f);
        bwd.label = mbLabel("bwd", static_cast<int>(i));
        last_bwd = plan.add(std::move(bwd));
    }

    // Store ALL gradients back.
    PlanOp store;
    store.kind = OpKind::StoreAll;
    store.engine = EngineId::CommStream;
    store.gaussians = wl.n_target;
    store.d2h_bytes = wl.n_target * kParamBytesPerGaussian;
    store.deps.push_back(last_bwd);
    store.label = "store all grads";
    int st = plan.add(std::move(store));

    // CPU Adam over every Gaussian, after the full gradient arrives.
    PlanOp adam;
    adam.kind = OpKind::CpuAdam;
    adam.engine = EngineId::CpuThread;
    adam.gaussians = wl.n_target;
    adam.deps.push_back(st);
    adam.label = "cpu adam (all)";
    plan.add(std::move(adam));

    plan.validate();
    return r;
}

/** The CLM pipeline of Figure 6 with the 1F1B stream schedule of §5.3. */
BatchPlanResult
planClm(const PlannerConfig &config, const BatchWorkload &wl)
{
    BatchPlanResult r;
    size_t b = wl.sets.size();
    r.scale = wl.n_target / std::max<double>(wl.n_synthetic, 1);

    Timer sched_timer;

    // 1. Ordering (§4.2.3).
    OrderingInputs oi;
    oi.sets = &wl.sets;
    oi.camera_centers = &wl.camera_centers;
    oi.seed = config.seed;
    oi.tsp = config.tsp;
    r.order = orderViews(config.ordering, b, oi);

    std::vector<std::vector<uint32_t>> ordered;
    ordered.reserve(b);
    for (int v : r.order)
        ordered.push_back(wl.sets[v]);

    // 2. Caching (§4.2.1) and finalization (§4.2.2).
    r.cache = planCache(ordered, config.enable_cache);
    r.fin = computeFinalization(wl.n_synthetic, ordered, false);
    r.scheduling_seconds = sched_timer.seconds();

    // 3. Emit the op DAG.
    BatchPlan &plan = r.plan;
    plan.batch_size = static_cast<int>(b);

    PlanOp cull_op;
    cull_op.kind = OpKind::Cull;
    cull_op.engine = EngineId::ComputeStream;
    cull_op.gaussians = wl.n_target;
    cull_op.label = "cull";
    int cull = plan.add(std::move(cull_op));

    PlanOp sched_op;
    sched_op.kind = OpKind::Schedule;
    sched_op.engine = EngineId::CpuThread;
    sched_op.deps.push_back(cull);
    sched_op.fixed_seconds = std::max(r.scheduling_seconds,
                                      config.tsp.time_limit_ms * 1e-3);
    sched_op.label = "schedule (tsp)";
    int sched = plan.add(std::move(sched_op));

    const double p_bytes =
        static_cast<double>(kNonCriticalBytesPerGaussian);
    const double g_bytes = static_cast<double>(kGradBytesPerGaussian);

    std::vector<int> ld(b, -1), cp(b, -1), fwd(b, -1), bwd(b, -1);
    std::vector<int> adam_ops;

    auto emit_loads = [&](size_t i) {
        const MicrobatchTransfers &t = r.cache.mb[i];
        PlanOp op;
        op.kind = OpKind::LoadParams;
        op.engine = EngineId::CommStream;
        op.microbatch = static_cast<int>(i);
        op.gaussians = static_cast<double>(t.load_new.size()) * r.scale;
        op.h2d_bytes = op.gaussians * p_bytes;
        op.dram_bytes = op.gaussians * p_bytes;    // register -> GPU mem
        op.deps.push_back(sched);
        if (i >= 2)
            op.deps.push_back(bwd[i - 2]);    // double-buffer reuse
        op.label = mbLabel("LD", static_cast<int>(i));
        ld[i] = plan.add(std::move(op));

        if (!t.copy_cached.empty()) {
            PlanOp cop;
            cop.kind = OpKind::CopyCached;
            cop.engine = EngineId::CommStream;
            cop.microbatch = static_cast<int>(i);
            cop.gaussians =
                static_cast<double>(t.copy_cached.size()) * r.scale;
            cop.dram_bytes = cop.gaussians * p_bytes * 2.0;    // r + w
            if (i >= 2)
                cop.deps.push_back(bwd[i - 2]);
            cop.label = mbLabel("COPY", static_cast<int>(i));
            cp[i] = plan.add(std::move(cop));
        }
    };

    auto emit_compute_fwd = [&](size_t i) {
        PlanOp op;
        op.kind = OpKind::Forward;
        op.engine = EngineId::ComputeStream;
        op.microbatch = static_cast<int>(i);
        op.gaussians = static_cast<double>(ordered[i].size()) * r.scale;
        op.pixels = wl.pixels_per_view;
        op.deps.push_back(ld[i]);
        if (cp[i] >= 0)
            op.deps.push_back(cp[i]);
        op.label = mbLabel("FWD", static_cast<int>(i));
        fwd[i] = plan.add(std::move(op));
    };

    auto emit_compute_bwd = [&](size_t i) {
        PlanOp op;
        op.kind = OpKind::Backward;
        op.engine = EngineId::ComputeStream;
        op.microbatch = static_cast<int>(i);
        op.gaussians = static_cast<double>(ordered[i].size()) * r.scale;
        op.pixels = wl.pixels_per_view;
        op.deps.push_back(fwd[i]);
        op.label = mbLabel("BWD", static_cast<int>(i));
        bwd[i] = plan.add(std::move(op));
    };

    auto emit_store = [&](size_t i) {
        const MicrobatchTransfers &t = r.cache.mb[i];
        if (!t.carry_grads.empty()) {
            PlanOp carry;
            carry.kind = OpKind::CarryGrads;
            carry.engine = EngineId::CommStream;
            carry.microbatch = static_cast<int>(i);
            carry.gaussians =
                static_cast<double>(t.carry_grads.size()) * r.scale;
            carry.dram_bytes = carry.gaussians * g_bytes * 3.0;  // r+r+w
            carry.deps.push_back(bwd[i]);
            carry.label = mbLabel("CARRY", static_cast<int>(i));
            plan.add(std::move(carry));
        }
        PlanOp st;
        st.kind = OpKind::StoreGrads;
        st.engine = EngineId::CommStream;
        st.microbatch = static_cast<int>(i);
        st.gaussians = static_cast<double>(t.store_grads.size()) * r.scale;
        st.d2h_bytes = st.gaussians * g_bytes;
        st.h2d_bytes = st.gaussians * g_bytes;    // RMW fetch (§5.3)
        st.deps.push_back(bwd[i]);
        st.label = mbLabel("ST", static_cast<int>(i));
        int st_id = plan.add(std::move(st));

        // Overlapped CPU Adam for F_{i+1} (1-based), gated on the
        // gradient-completion signal written after the transfer (§5.4).
        if (config.overlap_adam) {
            double n_fin = static_cast<double>(
                               r.fin.finalized_after[i + 1].size())
                           * r.scale;
            if (n_fin > 0) {
                PlanOp ad;
                ad.kind = OpKind::CpuAdam;
                ad.engine = EngineId::CpuThread;
                ad.microbatch = static_cast<int>(i);
                ad.scattered_adam = true;
                ad.gaussians = n_fin;
                ad.deps.push_back(st_id);
                ad.label = mbLabel("ADAM F", static_cast<int>(i) + 1);
                adam_ops.push_back(plan.add(std::move(ad)));
            }
        } else if (i + 1 == b) {
            PlanOp ad;
            ad.kind = OpKind::CpuAdam;
            ad.engine = EngineId::CpuThread;
            ad.scattered_adam = true;
            ad.gaussians = static_cast<double>(r.fin.touched()) * r.scale;
            ad.deps.push_back(st_id);
            ad.label = "ADAM (batch end)";
            adam_ops.push_back(plan.add(std::move(ad)));
        }
    };

    // 1F1B emission: prefetch microbatch i's loads during i-1's forward.
    for (size_t i = 0; i < b; ++i) {
        emit_loads(i);
        if (i >= 1) {
            emit_compute_bwd(i - 1);
            emit_store(i - 1);
        }
        emit_compute_fwd(i);
    }
    emit_compute_bwd(b - 1);
    emit_store(b - 1);

    // Updated critical attributes flow back to the GPU-resident store so
    // the next batch's culling sees them (§4.1).
    PlanOp wb;
    wb.kind = OpKind::WriteCritical;
    wb.engine = EngineId::CommStream;
    wb.gaussians = static_cast<double>(r.fin.touched()) * r.scale;
    wb.h2d_bytes = wb.gaussians * kCriticalWriteBytes;
    wb.deps = adam_ops;
    wb.label = "critical write-back";
    plan.add(std::move(wb));

    plan.validate();
    return r;
}

} // namespace

const char *
systemName(SystemKind s)
{
    switch (s) {
      case SystemKind::Baseline:
        return "Baseline";
      case SystemKind::EnhancedBaseline:
        return "Enhanced Baseline";
      case SystemKind::NaiveOffload:
        return "Naive Offloading";
      case SystemKind::Clm:
        return "CLM";
    }
    return "?";
}

double
BatchPlanResult::paramLoadBytesScaled() const
{
    return static_cast<double>(cache.paramLoadBytes()) * scale;
}

BatchPlanResult
planBatch(const PlannerConfig &config, const BatchWorkload &workload)
{
    CLM_ASSERT(!workload.sets.empty(), "empty batch");
    CLM_ASSERT(workload.n_synthetic > 0, "need synthetic model size");
    CLM_ASSERT(workload.n_target > 0, "need target model size");
    CLM_ASSERT(workload.camera_centers.size() == workload.sets.size(),
               "camera centers must match view count");

    switch (config.system) {
      case SystemKind::Baseline:
        return planGpuOnly(config, workload, false);
      case SystemKind::EnhancedBaseline:
        return planGpuOnly(config, workload, true);
      case SystemKind::NaiveOffload:
        return planNaive(config, workload);
      case SystemKind::Clm:
        return planClm(config, workload);
    }
    CLM_PANIC("unreachable system kind");
}

} // namespace clm
