#include "offload/cache_planner.hpp"

#include <algorithm>

namespace clm {

namespace {

/** Split sorted @p cur into (cur \ prev, cur intersect prev). */
void
splitByMembership(const std::vector<uint32_t> &cur,
                  const std::vector<uint32_t> &prev,
                  std::vector<uint32_t> &only_cur,
                  std::vector<uint32_t> &both)
{
    only_cur.clear();
    both.clear();
    size_t i = 0, j = 0;
    while (i < cur.size()) {
        while (j < prev.size() && prev[j] < cur[i])
            ++j;
        if (j < prev.size() && prev[j] == cur[i])
            both.push_back(cur[i]);
        else
            only_cur.push_back(cur[i]);
        ++i;
    }
}

} // namespace

size_t
CachePlan::paramLoadBytes() const
{
    size_t n = 0;
    for (const auto &t : mb)
        n += t.load_new.size();
    return n * kNonCriticalBytesPerGaussian;
}

size_t
CachePlan::gradStoreBytes() const
{
    size_t n = 0;
    for (const auto &t : mb)
        n += t.store_grads.size();
    return n * kGradBytesPerGaussian;
}

size_t
CachePlan::gradFetchBytes() const
{
    // The RMW accumulate kernel fetches the previously accumulated value
    // for every stored gradient (§5.3).
    return gradStoreBytes();
}

size_t
CachePlan::cacheCopyBytes() const
{
    size_t n = 0;
    for (const auto &t : mb)
        n += t.copy_cached.size();
    return n * kNonCriticalBytesPerGaussian;
}

size_t
CachePlan::cacheHits() const
{
    size_t n = 0;
    for (const auto &t : mb)
        n += t.copy_cached.size();
    return n;
}

size_t
CachePlan::totalLoads() const
{
    size_t n = 0;
    for (const auto &t : mb)
        n += t.load_new.size() + t.copy_cached.size();
    return n;
}

CachePlan
planCache(const std::vector<std::vector<uint32_t>> &ordered_sets,
          bool enable_cache)
{
    CachePlan plan;
    size_t b = ordered_sets.size();
    plan.mb.resize(b);
    static const std::vector<uint32_t> kEmpty;

    for (size_t i = 0; i < b; ++i) {
        const auto &cur = ordered_sets[i];
        const auto &prev =
            (enable_cache && i > 0) ? ordered_sets[i - 1] : kEmpty;
        const auto &next =
            (enable_cache && i + 1 < b) ? ordered_sets[i + 1] : kEmpty;
        MicrobatchTransfers &t = plan.mb[i];
        splitByMembership(cur, prev, t.load_new, t.copy_cached);
        splitByMembership(cur, next, t.store_grads, t.carry_grads);
    }
    return plan;
}

} // namespace clm
