#include "offload/pinned_pool.hpp"

#include <cstring>

#include "gaussian/model.hpp"
#include "util/logging.hpp"

namespace clm {

size_t
PinnedLayout::totalBytes(size_t n, size_t n_signal_slots)
{
    return n * (paramStride() + gradStride())
         + n_signal_slots * kCacheLineBytes;
}

PinnedPool::PinnedPool(size_t n, size_t n_signal_slots)
    : n_(n), n_signals_(n_signal_slots)
{
    bytes_ = PinnedLayout::totalBytes(n, n_signal_slots);
    // +64 so we can cache-line-align the base, as cudaHostAlloc would.
    storage_ = std::make_unique<std::byte[]>(bytes_ + kCacheLineBytes);
    auto base = reinterpret_cast<uintptr_t>(storage_.get());
    uintptr_t aligned =
        (base + kCacheLineBytes - 1) & ~(uintptr_t(kCacheLineBytes) - 1);
    params_ = reinterpret_cast<std::byte *>(aligned);
    grads_ = params_ + n_ * PinnedLayout::paramStride();
    signals_ = grads_ + n_ * PinnedLayout::gradStride();
    std::memset(params_, 0, bytes_);
}

float *
PinnedPool::paramRecord(size_t i)
{
    CLM_ASSERT(i < n_, "param record out of range");
    return reinterpret_cast<float *>(params_
                                     + i * PinnedLayout::paramStride());
}

const float *
PinnedPool::paramRecord(size_t i) const
{
    return const_cast<PinnedPool *>(this)->paramRecord(i);
}

float *
PinnedPool::gradRecord(size_t i)
{
    CLM_ASSERT(i < n_, "grad record out of range");
    return reinterpret_cast<float *>(grads_
                                     + i * PinnedLayout::gradStride());
}

const float *
PinnedPool::gradRecord(size_t i) const
{
    return const_cast<PinnedPool *>(this)->gradRecord(i);
}

uint32_t *
PinnedPool::signalSlot(size_t slot)
{
    CLM_ASSERT(slot < n_signals_, "signal slot out of range");
    return reinterpret_cast<uint32_t *>(signals_
                                        + slot * kCacheLineBytes);
}

void
PinnedPool::zeroGradients()
{
    std::memset(grads_, 0, n_ * PinnedLayout::gradStride());
}

void
PinnedPool::uploadParams(const GaussianModel &model)
{
    CLM_ASSERT(model.size() == n_, "model/pool size mismatch");
    for (size_t i = 0; i < n_; ++i)
        model.packNonCritical(i, paramRecord(i));
}

void
PinnedPool::downloadParams(GaussianModel &model) const
{
    CLM_ASSERT(model.size() == n_, "model/pool size mismatch");
    for (size_t i = 0; i < n_; ++i)
        model.unpackNonCritical(i, paramRecord(i));
}

} // namespace clm
