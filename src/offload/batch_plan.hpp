/**
 * @file
 * The op-DAG a training system launches for one batch. The plan is
 * execution-substrate-agnostic: the functional trainers interpret the same
 * structure the discrete-event GPU simulator times, so the overlap and
 * communication behaviour measured in the benches is exactly the behaviour
 * the real system's streams would exhibit.
 */

#ifndef CLM_OFFLOAD_BATCH_PLAN_HPP
#define CLM_OFFLOAD_BATCH_PLAN_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace clm {

/** Operation types across all four systems. */
enum class OpKind
{
    Cull,          //!< Pre-rendering frustum culling over N Gaussians.
    Schedule,      //!< CPU-side microbatch ordering (TSP) + plan build.
    LoadParams,    //!< Selective PCIe load of non-critical params (CLM).
    CopyCached,    //!< GPU-to-GPU copy of cached params (CLM).
    Forward,       //!< Forward rasterization of one microbatch.
    Backward,      //!< Backward pass of one microbatch.
    StoreGrads,    //!< Selective RMW gradient offload (CLM).
    CarryGrads,    //!< On-GPU gradient accumulation for cached rows (CLM).
    CpuAdam,       //!< CPU Adam over a subset of Gaussians.
    GpuAdam,       //!< GPU Adam (GPU-only baselines).
    LoadAll,       //!< Bulk PCIe load of all parameters (naive offload).
    StoreAll,      //!< Bulk PCIe store of all gradients (naive offload).
    WriteCritical, //!< Write back updated critical attributes (CLM).
};

/** Execution engines: two CUDA streams plus the CPU Adam thread. */
enum class EngineId : uint8_t
{
    ComputeStream = 0,    //!< Stream 0: rendering kernels.
    CommStream = 1,       //!< Stream 1: transfer kernels (higher priority).
    CpuThread = 2,        //!< Dedicated CPU Adam / scheduling thread.
};

constexpr int kNumEngines = 3;

/** One node of the plan DAG. */
struct PlanOp
{
    OpKind kind;
    EngineId engine;
    int microbatch = -1;       //!< -1 for batch-level ops.
    double gaussians = 0;      //!< Gaussians processed (scaled count).
    double pixels = 0;         //!< Pixels rendered (compute ops).
    double h2d_bytes = 0;      //!< PCIe CPU->GPU traffic.
    double d2h_bytes = 0;      //!< PCIe GPU->CPU traffic.
    double dram_bytes = 0;     //!< GPU-DRAM traffic beyond PCIe mirroring.
    double fixed_seconds = 0;  //!< When > 0, overrides the cost model
                               //!< (used for measured scheduling time).
    bool scattered_adam = false;   //!< CpuAdam over a scattered index
                                   //!< subset (slower per param than a
                                   //!< bulk sweep).
    std::vector<int> deps;     //!< Indices of prerequisite ops.
    std::string label;
};

/** The full batch DAG. Ops within an engine run in emission (FIFO) order,
 *  like operations enqueued on a CUDA stream. */
struct BatchPlan
{
    std::vector<PlanOp> ops;
    int batch_size = 0;

    /** Append an op, returning its index for dependency wiring. */
    int add(PlanOp op);

    /** Total PCIe CPU->GPU bytes across the plan. */
    double h2dBytes() const;
    /** Total PCIe GPU->CPU bytes across the plan. */
    double d2hBytes() const;

    /** Sanity-check the DAG: dependencies exist and precede their users. */
    void validate() const;
};

/** Short human-readable name of an op kind. */
const char *opKindName(OpKind k);

} // namespace clm

#endif // CLM_OFFLOAD_BATCH_PLAN_HPP
