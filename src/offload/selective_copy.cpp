#include "offload/selective_copy.hpp"

#include <algorithm>
#include <cstring>

#include "util/logging.hpp"

namespace clm {

DeviceBuffer::DeviceBuffer(size_t capacity) : capacity_(capacity)
{
    params_.resize(capacity * kNonCriticalDim);
    grads_.resize(capacity * kParamsPerGaussian);
}

void
DeviceBuffer::bind(std::vector<uint32_t> indices)
{
    CLM_ASSERT(indices.size() <= capacity_,
               "device buffer overflow: ", indices.size(), " > ",
               capacity_);
    CLM_ASSERT(std::is_sorted(indices.begin(), indices.end()),
               "bound indices must be ascending");
    indices_ = std::move(indices);
}

int64_t
DeviceBuffer::rowOf(uint32_t g) const
{
    auto it = std::lower_bound(indices_.begin(), indices_.end(), g);
    if (it == indices_.end() || *it != g)
        return -1;
    return it - indices_.begin();
}

size_t
DeviceBuffer::boundRow(uint32_t g) const
{
    int64_t r = rowOf(g);
    CLM_ASSERT(r >= 0, "gaussian ", g, " not bound in buffer");
    return static_cast<size_t>(r);
}

void
DeviceBuffer::zeroGrads()
{
    std::memset(grads_.data(), 0,
                rows() * kParamsPerGaussian * sizeof(float));
}

void
gatherParams(const PinnedPool &pool, DeviceBuffer &dst,
             const std::vector<uint32_t> &load_indices)
{
    // Both lists are ascending: a two-pointer merge walk finds each
    // target row in O(1) amortized — the CPU analogue of the fused
    // selective loading kernel (§5.2), which assigns one thread per
    // loaded Gaussian and never searches.
    const auto &bound = dst.indices();
    size_t r = 0;
    for (uint32_t g : load_indices) {
        while (r < bound.size() && bound[r] < g)
            ++r;
        CLM_ASSERT(r < bound.size() && bound[r] == g,
                   "load target ", g, " not bound in buffer");
        // The kernel splits the padded pinned record and writes the dense
        // 49-float row (§5.2's split-and-concatenate in one kernel).
        std::memcpy(dst.paramRow(r), pool.paramRecord(g),
                    kNonCriticalDim * sizeof(float));
    }
}

void
copyCachedParams(const DeviceBuffer &src, DeviceBuffer &dst,
                 const std::vector<uint32_t> &cached_indices)
{
    const auto &sb = src.indices();
    const auto &db = dst.indices();
    size_t rs = 0, rd = 0;
    for (uint32_t g : cached_indices) {
        while (rs < sb.size() && sb[rs] < g)
            ++rs;
        while (rd < db.size() && db[rd] < g)
            ++rd;
        CLM_ASSERT(rs < sb.size() && sb[rs] == g,
                   "cached gaussian ", g, " missing in source");
        CLM_ASSERT(rd < db.size() && db[rd] == g,
                   "cached gaussian ", g, " not bound in dest");
        std::memcpy(dst.paramRow(rd), src.paramRow(rs),
                    kNonCriticalDim * sizeof(float));
    }
}

void
scatterAccumulateGrads(const DeviceBuffer &src, PinnedPool &pool,
                       const std::vector<uint32_t> &store_indices)
{
    const auto &bound = src.indices();
    size_t r = 0;
    for (uint32_t g : store_indices) {
        while (r < bound.size() && bound[r] < g)
            ++r;
        CLM_ASSERT(r < bound.size() && bound[r] == g,
                   "store source ", g, " not bound in buffer");
        const float *row = src.gradRow(r);
        float *rec = pool.gradRecord(g);
        for (int k = 0; k < kParamsPerGaussian; ++k)
            rec[k] += row[k];    // fetch + add + store (§5.3)
    }
}

void
accumulateCarriedGrads(const DeviceBuffer &src, DeviceBuffer &dst,
                       const std::vector<uint32_t> &carry_indices)
{
    const auto &sb = src.indices();
    const auto &db = dst.indices();
    size_t rs = 0, rd = 0;
    for (uint32_t g : carry_indices) {
        while (rs < sb.size() && sb[rs] < g)
            ++rs;
        while (rd < db.size() && db[rd] < g)
            ++rd;
        CLM_ASSERT(rs < sb.size() && sb[rs] == g,
                   "carried gaussian ", g, " missing in source");
        CLM_ASSERT(rd < db.size() && db[rd] == g,
                   "carried gaussian ", g, " not bound in dest");
        const float *s = src.gradRow(rs);
        float *d = dst.gradRow(rd);
        for (int k = 0; k < kParamsPerGaussian; ++k)
            d[k] += s[k];
    }
}

} // namespace clm
