#include "offload/finalization.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/logging.hpp"

namespace clm {

size_t
FinalizationSchedule::overlappableUpdates() const
{
    size_t n = 0;
    for (size_t j = 1; j + 1 < finalized_after.size(); ++j)
        n += finalized_after[j].size();
    return n;
}

size_t
FinalizationSchedule::trailingUpdates() const
{
    return finalized_after.empty() ? 0 : finalized_after.back().size();
}

size_t
FinalizationSchedule::touched() const
{
    size_t n = 0;
    for (size_t j = 1; j < finalized_after.size(); ++j)
        n += finalized_after[j].size();
    return n;
}

FinalizationSchedule
computeFinalization(size_t n_gaussians,
                    const std::vector<std::vector<uint32_t>> &ordered_sets,
                    bool include_untouched)
{
    size_t b = ordered_sets.size();
    FinalizationSchedule sched;
    sched.finalized_after.resize(b + 1);

    // L_g = max{i | g in S_i}, found by scanning microbatches in order and
    // overwriting: the hash map holds the latest touch per Gaussian.
    std::unordered_map<uint32_t, uint32_t> last_touch;
    for (size_t i = 0; i < b; ++i) {
        for (uint32_t g : ordered_sets[i]) {
            CLM_ASSERT(g < n_gaussians, "gaussian index out of range");
            last_touch[g] = static_cast<uint32_t>(i + 1);    // 1-based
        }
    }
    for (const auto &[g, l] : last_touch)
        sched.finalized_after[l].push_back(g);
    for (auto &f : sched.finalized_after)
        std::sort(f.begin(), f.end());

    if (include_untouched) {
        auto &f0 = sched.finalized_after[0];
        for (uint32_t g = 0; g < n_gaussians; ++g)
            if (!last_touch.count(g))
                f0.push_back(g);
    }
    return sched;
}

} // namespace clm
