#include "offload/frustum_sets.hpp"

#include <algorithm>

#include "render/culling.hpp"
#include "util/logging.hpp"

namespace clm {

std::vector<double>
FrustumSets::sparsities() const
{
    std::vector<double> rho;
    rho.reserve(sets.size());
    for (const auto &s : sets)
        rho.push_back(sparsity(s.size(), total_gaussians));
    return rho;
}

std::vector<uint32_t>
FrustumSets::unionSet() const
{
    std::vector<uint32_t> u;
    for (const auto &s : sets)
        u.insert(u.end(), s.begin(), s.end());
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    return u;
}

FrustumSets
computeFrustumSets(const GaussianModel &model,
                   const std::vector<Camera> &cameras)
{
    FrustumSets out;
    out.total_gaussians = model.size();
    out.sets.reserve(cameras.size());
    for (const Camera &cam : cameras)
        out.sets.push_back(frustumCull(model, cam));
    return out;
}

FrustumSets
selectViews(const FrustumSets &all, const std::vector<int> &view_indices)
{
    FrustumSets out;
    out.total_gaussians = all.total_gaussians;
    out.sets.reserve(view_indices.size());
    for (int v : view_indices) {
        CLM_ASSERT(v >= 0 && static_cast<size_t>(v) < all.sets.size(),
                   "view index out of range");
        out.sets.push_back(all.sets[v]);
    }
    return out;
}

} // namespace clm
