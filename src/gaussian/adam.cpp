#include "gaussian/adam.hpp"

#include <cmath>
#include <numeric>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

void
CpuAdam::reset(size_t n)
{
    m_position_.assign(n, Vec3{});
    v_position_.assign(n, Vec3{});
    m_log_scale_.assign(n, Vec3{});
    v_log_scale_.assign(n, Vec3{});
    m_rotation_.assign(n, Quat{0, 0, 0, 0});
    v_rotation_.assign(n, Quat{0, 0, 0, 0});
    m_sh_.assign(n * kShDim, 0.0f);
    v_sh_.assign(n * kShDim, 0.0f);
    m_opacity_.assign(n, 0.0f);
    v_opacity_.assign(n, 0.0f);
    step_.assign(n, 0);
}

void
CpuAdam::step(float &param, float grad, float &m, float &v, float lr,
              uint32_t t) const
{
    m = config_.beta1 * m + (1.0f - config_.beta1) * grad;
    v = config_.beta2 * v + (1.0f - config_.beta2) * grad * grad;
    float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t));
    float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t));
    float m_hat = m / bc1;
    float v_hat = v / bc2;
    param -= lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
}

void
CpuAdam::update(GaussianModel &model, const GaussianGrads &grads)
{
    std::vector<uint32_t> all(model.size());
    std::iota(all.begin(), all.end(), 0u);
    updateSubset(model, grads, all);
}

void
CpuAdam::updateSubset(GaussianModel &model, const GaussianGrads &grads,
                      const std::vector<uint32_t> &indices)
{
    CLM_ASSERT(model.size() == size(),
               "optimizer state size mismatch: model=", model.size(),
               " adam=", size());
    CLM_ASSERT(grads.size() == size(), "gradient size mismatch");

    auto update_rows = [&](size_t begin, size_t end) {
        for (size_t k = begin; k < end; ++k)
            updateRow(model, grads, indices[k]);
    };
    if (config_.parallel && indices.size() > 1024)
        ThreadPool::global().parallelFor(indices.size(), update_rows);
    else
        update_rows(0, indices.size());
}

float
CpuAdam::positionLr(uint32_t t) const
{
    if (config_.lr_position_final <= 0.0f
        || config_.lr_position_final == config_.lr_position
        || config_.position_lr_max_steps == 0) {
        return config_.lr_position;
    }
    float progress = std::min(
        1.0f, static_cast<float>(t)
                  / static_cast<float>(config_.position_lr_max_steps));
    // log-linear interpolation between initial and final LR.
    return config_.lr_position
           * std::pow(config_.lr_position_final / config_.lr_position,
                      progress);
}

void
CpuAdam::updateRow(GaussianModel &model, const GaussianGrads &grads,
                   uint32_t i)
{
    {
        uint32_t t = ++step_[i];
        float lr_pos = positionLr(t);

        Vec3 &p = model.position(i);
        step(p.x, grads.d_position[i].x, m_position_[i].x, v_position_[i].x,
             lr_pos, t);
        step(p.y, grads.d_position[i].y, m_position_[i].y, v_position_[i].y,
             lr_pos, t);
        step(p.z, grads.d_position[i].z, m_position_[i].z, v_position_[i].z,
             lr_pos, t);

        Vec3 &s = model.logScale(i);
        step(s.x, grads.d_log_scale[i].x, m_log_scale_[i].x,
             v_log_scale_[i].x, config_.lr_log_scale, t);
        step(s.y, grads.d_log_scale[i].y, m_log_scale_[i].y,
             v_log_scale_[i].y, config_.lr_log_scale, t);
        step(s.z, grads.d_log_scale[i].z, m_log_scale_[i].z,
             v_log_scale_[i].z, config_.lr_log_scale, t);

        Quat &q = model.rotation(i);
        step(q.w, grads.d_rotation[i].w, m_rotation_[i].w, v_rotation_[i].w,
             config_.lr_rotation, t);
        step(q.x, grads.d_rotation[i].x, m_rotation_[i].x, v_rotation_[i].x,
             config_.lr_rotation, t);
        step(q.y, grads.d_rotation[i].y, m_rotation_[i].y, v_rotation_[i].y,
             config_.lr_rotation, t);
        step(q.z, grads.d_rotation[i].z, m_rotation_[i].z, v_rotation_[i].z,
             config_.lr_rotation, t);

        float *sh = model.sh(i);
        const float *dsh = &grads.d_sh[size_t(i) * kShDim];
        float *msh = &m_sh_[size_t(i) * kShDim];
        float *vsh = &v_sh_[size_t(i) * kShDim];
        for (int k = 0; k < kShDim; ++k)
            step(sh[k], dsh[k], msh[k], vsh[k], config_.lr_sh, t);

        step(model.rawOpacity(i), grads.d_opacity[i], m_opacity_[i],
             v_opacity_[i], config_.lr_opacity, t);
    }
}

} // namespace clm
