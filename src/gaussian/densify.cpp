#include "gaussian/densify.hpp"

#include <algorithm>
#include <cmath>

#include "math/rng.hpp"
#include "util/logging.hpp"

namespace clm {

void
Densifier::reset(size_t n)
{
    grad_accum_.assign(n, 0.0f);
    grad_count_.assign(n, 0);
}

void
Densifier::observe(const GaussianGrads &grads)
{
    CLM_ASSERT(grads.size() == grad_accum_.size(),
               "densifier state size mismatch");
    for (size_t i = 0; i < grads.size(); ++i)
        observeNorm(i, grads.positionGradNorm(i));
}

void
Densifier::observeNorm(size_t i, float norm)
{
    CLM_ASSERT(i < grad_accum_.size(), "densifier index out of range");
    if (norm > 0.0f) {
        grad_accum_[i] += norm;
        grad_count_[i] += 1;
    }
}

DensifyStats
Densifier::densify(GaussianModel &model, CpuAdam &adam, Rng &rng)
{
    CLM_ASSERT(model.size() == grad_accum_.size(),
               "densifier/model size mismatch");
    DensifyStats stats;
    size_t n = model.size();

    // 1. Prune near-transparent Gaussians.
    std::vector<uint32_t> to_prune;
    for (size_t i = 0; i < n; ++i)
        if (model.worldOpacity(i) < config_.prune_opacity)
            to_prune.push_back(static_cast<uint32_t>(i));

    // 2. Decide clones/splits on the surviving rows (before removal so the
    //    accumulated gradients still index correctly).
    struct Child
    {
        uint32_t parent;
        bool is_split;
    };
    std::vector<Child> children;
    size_t budget =
        config_.max_gaussians > n ? config_.max_gaussians - n : 0;
    for (size_t i = 0; i < n && children.size() < budget; ++i) {
        if (grad_count_[i] == 0)
            continue;
        if (model.worldOpacity(i) < config_.prune_opacity)
            continue;
        float mean_grad = grad_accum_[i] / grad_count_[i];
        if (mean_grad < config_.grad_threshold)
            continue;
        Vec3 ws = model.worldScale(i);
        float max_scale = std::max({ws.x, ws.y, ws.z});
        bool is_split = max_scale > config_.scale_threshold;
        int copies = is_split ? config_.split_children : 1;
        for (int c = 0; c < copies && children.size() < budget; ++c)
            children.push_back({static_cast<uint32_t>(i), is_split});
        if (is_split)
            ++stats.split;
        else
            ++stats.cloned;
    }

    // 3. Materialize children.
    for (const Child &ch : children) {
        uint32_t p = ch.parent;
        Vec3 pos = model.position(p);
        Vec3 ls = model.logScale(p);
        if (ch.is_split) {
            // Sample the child position from the parent Gaussian and
            // shrink the child's scale.
            Vec3 ws = model.worldScale(p);
            pos += Vec3{rng.normal(0.0f, ws.x), rng.normal(0.0f, ws.y),
                        rng.normal(0.0f, ws.z)};
            float shrink = std::log(config_.split_scale_shrink);
            ls -= Vec3{shrink, shrink, shrink};
        }
        model.append(pos, ls, model.rotation(p), model.sh(p),
                     model.rawOpacity(p));
    }

    // If this was a split (not a clone), the parent is replaced by its
    // children: mark split parents for pruning as reference 3DGS does.
    std::vector<uint32_t> split_parents;
    for (const Child &ch : children)
        if (ch.is_split)
            split_parents.push_back(ch.parent);
    std::sort(split_parents.begin(), split_parents.end());
    split_parents.erase(
        std::unique(split_parents.begin(), split_parents.end()),
        split_parents.end());

    std::vector<uint32_t> removals = to_prune;
    removals.insert(removals.end(), split_parents.begin(),
                    split_parents.end());
    std::sort(removals.begin(), removals.end());
    removals.erase(std::unique(removals.begin(), removals.end()),
                   removals.end());
    stats.pruned = to_prune.size();

    model.removeRows(removals);

    // 4. Optimizer state: reference 3DGS rebuilds rows for new Gaussians;
    //    we conservatively reset all moments after a topology change.
    adam.reset(model.size());

    stats.resulting_size = model.size();
    reset(model.size());
    return stats;
}

} // namespace clm
