#include "gaussian/model.hpp"

#include <algorithm>
#include <cstring>

#include "math/rng.hpp"
#include "util/logging.hpp"

namespace clm {

void
GaussianGrads::resize(size_t n)
{
    d_position.assign(n, Vec3{});
    d_log_scale.assign(n, Vec3{});
    d_rotation.assign(n, Quat{0, 0, 0, 0});
    d_sh.assign(n * kShDim, 0.0f);
    d_opacity.assign(n, 0.0f);
}

void
GaussianGrads::zero()
{
    std::fill(d_position.begin(), d_position.end(), Vec3{});
    std::fill(d_log_scale.begin(), d_log_scale.end(), Vec3{});
    std::fill(d_rotation.begin(), d_rotation.end(), Quat{0, 0, 0, 0});
    std::fill(d_sh.begin(), d_sh.end(), 0.0f);
    std::fill(d_opacity.begin(), d_opacity.end(), 0.0f);
}

void
GaussianGrads::accumulate(const GaussianGrads &other)
{
    CLM_ASSERT(size() == other.size(), "gradient size mismatch");
    for (size_t i = 0; i < d_position.size(); ++i) {
        d_position[i] += other.d_position[i];
        d_log_scale[i] += other.d_log_scale[i];
        d_rotation[i].w += other.d_rotation[i].w;
        d_rotation[i].x += other.d_rotation[i].x;
        d_rotation[i].y += other.d_rotation[i].y;
        d_rotation[i].z += other.d_rotation[i].z;
        d_opacity[i] += other.d_opacity[i];
    }
    for (size_t i = 0; i < d_sh.size(); ++i)
        d_sh[i] += other.d_sh[i];
}

void
GaussianGrads::accumulateRows(const GaussianGrads &other,
                              const std::vector<uint32_t> &indices)
{
    CLM_ASSERT(size() == other.size(), "gradient size mismatch");
    for (uint32_t i : indices) {
        d_position[i] += other.d_position[i];
        d_log_scale[i] += other.d_log_scale[i];
        d_rotation[i].w += other.d_rotation[i].w;
        d_rotation[i].x += other.d_rotation[i].x;
        d_rotation[i].y += other.d_rotation[i].y;
        d_rotation[i].z += other.d_rotation[i].z;
        d_opacity[i] += other.d_opacity[i];
        const float *src = &other.d_sh[size_t(i) * kShDim];
        float *dst = &d_sh[size_t(i) * kShDim];
        for (int k = 0; k < kShDim; ++k)
            dst[k] += src[k];
    }
}

void
GaussianGrads::zeroRows(const std::vector<uint32_t> &indices)
{
    for (uint32_t i : indices) {
        d_position[i] = Vec3{};
        d_log_scale[i] = Vec3{};
        d_rotation[i] = Quat{0, 0, 0, 0};
        d_opacity[i] = 0.0f;
        std::memset(&d_sh[size_t(i) * kShDim], 0, kShDim * sizeof(float));
    }
}

void
GaussianModel::resize(size_t n)
{
    position_.resize(n, Vec3{});
    log_scale_.resize(n, Vec3{});
    rotation_.resize(n, Quat{});
    sh_.resize(n * kShDim, 0.0f);
    raw_opacity_.resize(n, 0.0f);
}

size_t
GaussianModel::append(const Vec3 &pos, const Vec3 &log_scale,
                      const Quat &rot, const float *sh48, float raw_opacity)
{
    position_.push_back(pos);
    log_scale_.push_back(log_scale);
    rotation_.push_back(rot);
    sh_.insert(sh_.end(), sh48, sh48 + kShDim);
    raw_opacity_.push_back(raw_opacity);
    return position_.size() - 1;
}

void
GaussianModel::removeRows(const std::vector<uint32_t> &sorted_indices)
{
    if (sorted_indices.empty())
        return;
    size_t n = size();
    size_t write = 0;
    size_t next_removed = 0;
    for (size_t read = 0; read < n; ++read) {
        if (next_removed < sorted_indices.size()
            && sorted_indices[next_removed] == read) {
            ++next_removed;
            continue;
        }
        if (write != read) {
            position_[write] = position_[read];
            log_scale_[write] = log_scale_[read];
            rotation_[write] = rotation_[read];
            raw_opacity_[write] = raw_opacity_[read];
            std::memcpy(&sh_[write * kShDim], &sh_[read * kShDim],
                        kShDim * sizeof(float));
        }
        ++write;
    }
    CLM_ASSERT(next_removed == sorted_indices.size(),
               "removeRows: indices not sorted/unique or out of range");
    resize(write);
}

Mat3
GaussianModel::covariance(size_t i) const
{
    Mat3 r = unitRotation(i).toRotationMatrix();
    Vec3 s = worldScale(i);
    Mat3 s2 = Mat3::diag({s.x * s.x, s.y * s.y, s.z * s.z});
    return r.mul(s2).mul(r.transposed());
}

void
GaussianModel::packNonCritical(size_t i, float *out) const
{
    std::memcpy(out + kNcShOffset, sh(i), kShDim * sizeof(float));
    out[kNcOpacityOffset] = raw_opacity_[i];
}

void
GaussianModel::unpackNonCritical(size_t i, const float *in)
{
    std::memcpy(sh(i), in + kNcShOffset, kShDim * sizeof(float));
    raw_opacity_[i] = in[kNcOpacityOffset];
}

void
GaussianModel::packCritical(size_t i, float *out) const
{
    out[0] = position_[i].x;
    out[1] = position_[i].y;
    out[2] = position_[i].z;
    out[3] = log_scale_[i].x;
    out[4] = log_scale_[i].y;
    out[5] = log_scale_[i].z;
    out[6] = rotation_[i].w;
    out[7] = rotation_[i].x;
    out[8] = rotation_[i].y;
    out[9] = rotation_[i].z;
}

void
GaussianModel::unpackCritical(size_t i, const float *in)
{
    position_[i] = {in[0], in[1], in[2]};
    log_scale_[i] = {in[3], in[4], in[5]};
    rotation_[i] = {in[6], in[7], in[8], in[9]};
}

GaussianModel
GaussianModel::fromPointCloud(const std::vector<Vec3> &points,
                              const std::vector<Vec3> &colors,
                              float initial_scale)
{
    CLM_ASSERT(points.size() == colors.size(),
               "point/color count mismatch");
    GaussianModel m;
    m.resize(points.size());
    float ls = std::log(initial_scale);
    // DC-only SH: color = 0.5 + Y0*c0 with Y0 = 0.2820948 => c0 from color.
    constexpr float kY0 = 0.28209479177387814f;
    for (size_t i = 0; i < points.size(); ++i) {
        m.position_[i] = points[i];
        m.log_scale_[i] = {ls, ls, ls};
        m.rotation_[i] = Quat{1, 0, 0, 0};
        float *sh = m.sh(i);
        sh[0] = (colors[i].x - 0.5f) / kY0;
        sh[1] = (colors[i].y - 0.5f) / kY0;
        sh[2] = (colors[i].z - 0.5f) / kY0;
        m.raw_opacity_[i] = inverseSigmoid(0.1f);
    }
    return m;
}

GaussianModel
GaussianModel::random(size_t n, const Vec3 &lo, const Vec3 &hi,
                      float initial_scale, Rng &rng)
{
    std::vector<Vec3> pts(n), cols(n);
    for (size_t i = 0; i < n; ++i) {
        pts[i] = rng.uniformInBox(lo, hi);
        cols[i] = {rng.uniform(0.05f, 0.95f), rng.uniform(0.05f, 0.95f),
                   rng.uniform(0.05f, 0.95f)};
    }
    return fromPointCloud(pts, cols, initial_scale);
}

} // namespace clm
