/**
 * @file
 * Adaptive density control (§2.1, step "adaptive densification"): clone
 * small under-reconstructed Gaussians, split oversized ones, and prune
 * near-transparent ones — the mechanism that grows a model from its point-
 * cloud seed toward the Gaussian counts in Table 2.
 */

#ifndef CLM_GAUSSIAN_DENSIFY_HPP
#define CLM_GAUSSIAN_DENSIFY_HPP

#include <cstdint>
#include <vector>

#include "gaussian/adam.hpp"
#include "gaussian/model.hpp"

namespace clm {

class Rng;

/** Thresholds and limits for adaptive density control. */
struct DensifyConfig
{
    /** Positional-gradient threshold above which a Gaussian densifies. */
    float grad_threshold = 2e-4f;
    /** World-scale threshold separating clone (small) from split (large). */
    float scale_threshold = 0.05f;
    /** World opacity below which a Gaussian is pruned. */
    float prune_opacity = 0.005f;
    /** Split produces this many children (reference 3DGS uses 2). */
    int split_children = 2;
    /** Children of a split shrink by this factor (reference uses 1.6). */
    float split_scale_shrink = 1.6f;
    /** Hard cap on the model size; densification stops at the cap. */
    size_t max_gaussians = 1u << 22;
};

/** Outcome counters from one densification pass. */
struct DensifyStats
{
    size_t cloned = 0;
    size_t split = 0;
    size_t pruned = 0;
    size_t resulting_size = 0;
};

/**
 * Accumulates per-Gaussian positional-gradient statistics across training
 * iterations and periodically restructures the model.
 *
 * The optimizer state is resized alongside the model: children inherit
 * zeroed Adam moments (as in reference 3DGS, which re-creates optimizer
 * rows for new Gaussians).
 */
class Densifier
{
  public:
    explicit Densifier(DensifyConfig config = {}) : config_(config) {}

    /** Reset accumulated statistics for a model of size @p n. */
    void reset(size_t n);

    /** Fold one iteration's gradients into the running statistics. */
    void observe(const GaussianGrads &grads);

    /** Fold a single Gaussian's positional-gradient norm (used by the
     *  CLM trainer, which sees gradients per finalized subset). */
    void observeNorm(size_t i, float norm);

    /**
     * Run one densify+prune pass over @p model, resizing @p adam to match.
     * Clears the accumulated statistics afterwards.
     */
    DensifyStats densify(GaussianModel &model, CpuAdam &adam, Rng &rng);

    const DensifyConfig &config() const { return config_; }

  private:
    DensifyConfig config_;
    std::vector<float> grad_accum_;
    std::vector<uint32_t> grad_count_;
};

} // namespace clm

#endif // CLM_GAUSSIAN_DENSIFY_HPP
