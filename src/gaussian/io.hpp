/**
 * @file
 * Model serialization: a compact binary checkpoint format (magic +
 * version + count + raw SoA parameters) and a PLY point-cloud export for
 * interoperability with standard 3DGS viewers' input conventions.
 */

#ifndef CLM_GAUSSIAN_IO_HPP
#define CLM_GAUSSIAN_IO_HPP

#include <string>

#include "gaussian/model.hpp"

namespace clm {

/**
 * Write @p model to @p path as a binary checkpoint.
 * Format: "CLMG" magic, uint32 version, uint64 count, then per attribute
 * the packed float arrays (position, log-scale, rotation, SH, opacity).
 */
void saveModel(const GaussianModel &model, const std::string &path);

/** Load a checkpoint written by saveModel(). Fatal on format errors. */
GaussianModel loadModel(const std::string &path);

/**
 * Export positions + DC colors + opacity as an ASCII PLY point cloud
 * (the COLMAP-style seed format 3DGS pipelines initialize from, §2.1).
 */
void exportPly(const GaussianModel &model, const std::string &path);

} // namespace clm

#endif // CLM_GAUSSIAN_IO_HPP
