#include "gaussian/io.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "math/sh.hpp"
#include "util/logging.hpp"

namespace clm {

namespace {

constexpr char kMagic[4] = {'C', 'L', 'M', 'G'};
constexpr uint32_t kVersion = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
writeBytes(std::FILE *f, const void *data, size_t bytes)
{
    if (std::fwrite(data, 1, bytes, f) != bytes)
        CLM_FATAL("short write while saving model");
}

void
readBytes(std::FILE *f, void *data, size_t bytes)
{
    if (std::fread(data, 1, bytes, f) != bytes)
        CLM_FATAL("short read while loading model (truncated file?)");
}

} // namespace

void
saveModel(const GaussianModel &model, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        CLM_FATAL("cannot open ", path, " for writing");
    writeBytes(f.get(), kMagic, 4);
    writeBytes(f.get(), &kVersion, sizeof(kVersion));
    uint64_t count = model.size();
    writeBytes(f.get(), &count, sizeof(count));

    // Row-wise packed records keep the writer trivially versionable.
    std::vector<float> row(kParamsPerGaussian);
    for (size_t i = 0; i < model.size(); ++i) {
        model.packCritical(i, row.data());
        model.packNonCritical(i, row.data() + kCriticalDim);
        writeBytes(f.get(), row.data(),
                   kParamsPerGaussian * sizeof(float));
    }
}

GaussianModel
loadModel(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        CLM_FATAL("cannot open ", path, " for reading");
    char magic[4];
    readBytes(f.get(), magic, 4);
    if (std::memcmp(magic, kMagic, 4) != 0)
        CLM_FATAL(path, " is not a CLM checkpoint");
    uint32_t version = 0;
    readBytes(f.get(), &version, sizeof(version));
    if (version != kVersion)
        CLM_FATAL("unsupported checkpoint version ", version);
    uint64_t count = 0;
    readBytes(f.get(), &count, sizeof(count));

    GaussianModel model(count);
    std::vector<float> row(kParamsPerGaussian);
    for (size_t i = 0; i < count; ++i) {
        readBytes(f.get(), row.data(),
                  kParamsPerGaussian * sizeof(float));
        model.unpackCritical(i, row.data());
        model.unpackNonCritical(i, row.data() + kCriticalDim);
    }
    return model;
}

void
exportPly(const GaussianModel &model, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "w"));
    if (!f)
        CLM_FATAL("cannot open ", path, " for writing");
    std::fprintf(f.get(),
                 "ply\nformat ascii 1.0\nelement vertex %zu\n"
                 "property float x\nproperty float y\nproperty float z\n"
                 "property uchar red\nproperty uchar green\n"
                 "property uchar blue\nproperty float opacity\n"
                 "end_header\n",
                 model.size());
    constexpr float kY0 = 0.28209479177387814f;
    for (size_t i = 0; i < model.size(); ++i) {
        const Vec3 &p = model.position(i);
        auto channel = [&](int c) {
            float v = 0.5f + kY0 * model.sh(i)[c];
            v = std::clamp(v, 0.0f, 1.0f);
            return static_cast<int>(v * 255.0f + 0.5f);
        };
        std::fprintf(f.get(), "%g %g %g %d %d %d %g\n", p.x, p.y, p.z,
                     channel(0), channel(1), channel(2),
                     model.worldOpacity(i));
    }
}

} // namespace clm
