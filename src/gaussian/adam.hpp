/**
 * @file
 * CPU Adam optimizer over the Gaussian parameter store. Extends the
 * ZeRO-Offload-style CPU Adam to update an arbitrary *subset* of Gaussians
 * (§5.4), which is what makes the overlapped-finalization optimization
 * (§4.2.2) possible: Gaussians whose gradients are complete are updated
 * while later microbatches are still rendering.
 */

#ifndef CLM_GAUSSIAN_ADAM_HPP
#define CLM_GAUSSIAN_ADAM_HPP

#include <cstdint>
#include <vector>

#include "gaussian/model.hpp"

namespace clm {

/** Per-attribute learning rates, mirroring the reference 3DGS schedule. */
struct AdamConfig
{
    float lr_position = 1.6e-4f;
    /** Final position LR of the exponential decay schedule (reference
     *  3DGS decays 1.6e-4 -> 1.6e-6 over position_lr_max_steps). Set
     *  equal to lr_position to disable the schedule. */
    float lr_position_final = 1.6e-6f;
    /** Steps over which the position LR decays (per-Gaussian count). */
    uint32_t position_lr_max_steps = 30000;
    float lr_log_scale = 5e-3f;
    float lr_rotation = 1e-3f;
    float lr_sh = 2.5e-3f;
    float lr_opacity = 5e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-15f;
    /** Spread large subset updates across the thread pool (rows are
     *  independent, so results are identical to the serial sweep). */
    bool parallel = true;
};

/**
 * Adam with first/second moment state for every parameter of every
 * Gaussian. The moment buffers are the "two additional versions" of each
 * parameter counted in the paper's 59 x 4 x 4 bytes model-state estimate.
 */
class CpuAdam
{
  public:
    explicit CpuAdam(AdamConfig config = {}) : config_(config) {}

    /** (Re)allocate moment state for @p n Gaussians, zeroed. */
    void reset(size_t n);

    /** Number of Gaussians with optimizer state. */
    size_t size() const { return m_position_.size(); }

    /**
     * Apply one Adam step to *all* Gaussians using @p grads.
     * Equivalent to updateSubset() with the full index range; used by the
     * non-overlapped (naive offload / GPU-only) training paths.
     */
    void update(GaussianModel &model, const GaussianGrads &grads);

    /**
     * Apply one Adam step to the Gaussians in @p indices only.
     *
     * Each listed Gaussian advances its *own* step counter, so a Gaussian
     * updated early (because it was finalized by an early microbatch) sees
     * exactly the same bias correction as it would at batch end. This is
     * what makes overlapped CPU Adam bit-identical to batch-end Adam.
     */
    void updateSubset(GaussianModel &model, const GaussianGrads &grads,
                      const std::vector<uint32_t> &indices);

    /** Per-Gaussian step counts (for tests and bias-correction checks). */
    uint32_t stepCount(size_t i) const { return step_[i]; }

    const AdamConfig &config() const { return config_; }

    /** Mutable config access (e.g. LR schedules). */
    AdamConfig &config() { return config_; }

    /** Bytes of optimizer state (two moments per parameter). */
    size_t stateBytes() const
    { return size() * kParamsPerGaussian * 2 * sizeof(float); }

  private:
    /** Scalar Adam micro-kernel: updates param, m and v in place. */
    void step(float &param, float grad, float &m, float &v, float lr,
              uint32_t t) const;

    /** Full Adam update of one Gaussian's 59 parameters. */
    void updateRow(GaussianModel &model, const GaussianGrads &grads,
                   uint32_t i);

    /** Scheduled position LR at per-Gaussian step @p t. */
    float positionLr(uint32_t t) const;

    AdamConfig config_;
    std::vector<Vec3> m_position_, v_position_;
    std::vector<Vec3> m_log_scale_, v_log_scale_;
    std::vector<Quat> m_rotation_, v_rotation_;
    std::vector<float> m_sh_, v_sh_;
    std::vector<float> m_opacity_, v_opacity_;
    std::vector<uint32_t> step_;
};

} // namespace clm

#endif // CLM_GAUSSIAN_ADAM_HPP
