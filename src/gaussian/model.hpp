/**
 * @file
 * Structure-of-arrays storage for a scene's Gaussians: raw (pre-activation)
 * learnable parameters, matching the reference 3DGS parameterization
 * (log-scale, raw-sigmoid opacity, unnormalized quaternion).
 */

#ifndef CLM_GAUSSIAN_MODEL_HPP
#define CLM_GAUSSIAN_MODEL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gaussian/attributes.hpp"
#include "math/quat.hpp"
#include "math/vec.hpp"

namespace clm {

class Rng;

/**
 * Gradient buffers mirroring GaussianModel's parameter layout. Kept as a
 * separate aggregate so trainers can own several (e.g. per microbatch
 * accumulation buffers).
 */
struct GaussianGrads
{
    std::vector<Vec3> d_position;
    std::vector<Vec3> d_log_scale;
    std::vector<Quat> d_rotation;
    std::vector<float> d_sh;         //!< 48 per Gaussian.
    std::vector<float> d_opacity;    //!< 1 per Gaussian (raw, pre-sigmoid).

    /** Resize all buffers for @p n Gaussians and zero them. */
    void resize(size_t n);

    /** Zero all gradients without changing size. */
    void zero();

    /** Number of Gaussians covered. */
    size_t size() const { return d_position.size(); }

    /** Accumulate @p other into this buffer (sizes must match). */
    void accumulate(const GaussianGrads &other);

    /** Accumulate only the rows listed in @p indices from @p other. */
    void accumulateRows(const GaussianGrads &other,
                        const std::vector<uint32_t> &indices);

    /** Zero only the rows listed in @p indices. */
    void zeroRows(const std::vector<uint32_t> &indices);

    /** L2 norm of the position gradient of row @p i (densification cue). */
    float positionGradNorm(size_t i) const { return d_position[i].norm(); }
};

/**
 * The scene representation: N anisotropic 3D Gaussians stored as SoA.
 *
 * Parameters are stored *raw*; activations are applied on access:
 *  - world scale  = exp(log_scale)
 *  - world opacity = sigmoid(raw_opacity)
 *  - rotation     = normalize(quaternion)
 */
class GaussianModel
{
  public:
    GaussianModel() = default;

    /** Create @p n Gaussians with zeroed parameters. */
    explicit GaussianModel(size_t n) { resize(n); }

    /** Number of Gaussians. */
    size_t size() const { return position_.size(); }

    /** Resize to @p n Gaussians (new rows zero-initialized). */
    void resize(size_t n);

    /** Remove all Gaussians. */
    void clear() { resize(0); }

    /**
     * Append one Gaussian from raw parameters.
     * @return Index of the new Gaussian.
     */
    size_t append(const Vec3 &pos, const Vec3 &log_scale, const Quat &rot,
                  const float *sh48, float raw_opacity);

    /**
     * Remove the rows whose indices appear in @p sorted_indices (ascending,
     * unique). Remaining rows keep their relative order.
     */
    void removeRows(const std::vector<uint32_t> &sorted_indices);

    /** @name Raw parameter access */
    /// @{
    const Vec3 &position(size_t i) const { return position_[i]; }
    Vec3 &position(size_t i) { return position_[i]; }
    const Vec3 &logScale(size_t i) const { return log_scale_[i]; }
    Vec3 &logScale(size_t i) { return log_scale_[i]; }
    const Quat &rotation(size_t i) const { return rotation_[i]; }
    Quat &rotation(size_t i) { return rotation_[i]; }
    const float *sh(size_t i) const { return &sh_[i * kShDim]; }
    float *sh(size_t i) { return &sh_[i * kShDim]; }
    float rawOpacity(size_t i) const { return raw_opacity_[i]; }
    float &rawOpacity(size_t i) { return raw_opacity_[i]; }
    /// @}

    /** @name Activated (world-space) views */
    /// @{
    Vec3
    worldScale(size_t i) const
    {
        const Vec3 &s = log_scale_[i];
        return {std::exp(s.x), std::exp(s.y), std::exp(s.z)};
    }

    float
    worldOpacity(size_t i) const
    {
        return 1.0f / (1.0f + std::exp(-raw_opacity_[i]));
    }

    Quat unitRotation(size_t i) const { return rotation_[i].normalized(); }
    /// @}

    /**
     * World-space covariance Sigma = R S S^T R^T where S = diag(exp(ls)).
     */
    Mat3 covariance(size_t i) const;

    /**
     * Pack the 49 non-critical floats (SH then opacity) of Gaussian @p i
     * into @p out — the record format stored in pinned CPU memory (§5.2).
     */
    void packNonCritical(size_t i, float *out) const;

    /** Inverse of packNonCritical(). */
    void unpackNonCritical(size_t i, const float *in);

    /** Pack the 10 selection-critical floats (pos, log-scale, rot). */
    void packCritical(size_t i, float *out) const;

    /** Inverse of packCritical(). */
    void unpackCritical(size_t i, const float *in);

    /** Total model-state bytes during training (params+grad+2 moments). */
    size_t modelStateBytes() const
    { return size() * kModelStateBytesPerGaussian; }

    /**
     * Initialize from a point cloud: unit quaternions, isotropic log-scale
     * from the mean nearest-neighbour spacing heuristic, DC-only SH from
     * @p colors, opacity sigmoid^-1(0.1) as in reference 3DGS.
     */
    static GaussianModel fromPointCloud(const std::vector<Vec3> &points,
                                        const std::vector<Vec3> &colors,
                                        float initial_scale);

    /** Random initialization of @p n Gaussians inside @p lo..hi. */
    static GaussianModel random(size_t n, const Vec3 &lo, const Vec3 &hi,
                                float initial_scale, Rng &rng);

  private:
    std::vector<Vec3> position_;
    std::vector<Vec3> log_scale_;
    std::vector<Quat> rotation_;
    std::vector<float> sh_;            //!< 48 floats per Gaussian.
    std::vector<float> raw_opacity_;   //!< 1 float per Gaussian.
};

/** sigmoid^-1, used to seed raw opacities from target world opacities. */
inline float
inverseSigmoid(float y)
{
    return std::log(y / (1.0f - y));
}

} // namespace clm

#endif // CLM_GAUSSIAN_MODEL_HPP
