/**
 * @file
 * The 3DGS per-Gaussian parameter layout (Table 1 of the paper) and its
 * attribute-wise split into selection-critical and non-critical groups
 * (§4.1): position, scale and rotation (10 floats) are needed for frustum
 * culling and stay GPU-resident; spherical harmonics and opacity (49 floats)
 * are offloaded to pinned CPU memory.
 */

#ifndef CLM_GAUSSIAN_ATTRIBUTES_HPP
#define CLM_GAUSSIAN_ATTRIBUTES_HPP

#include <cstddef>
#include <cstdint>

#include "math/sh.hpp"

namespace clm {

/** Parameter counts per attribute (Table 1). */
constexpr int kPosDim = 3;
constexpr int kScaleDim = 3;
constexpr int kRotDim = 4;
constexpr int kShDim = kShCoeffs;    // 48
constexpr int kOpacityDim = 1;

/** Total learnable parameters per Gaussian: 3 + (3+4) + 48 + 1 = 59. */
constexpr int kParamsPerGaussian =
    kPosDim + kScaleDim + kRotDim + kShDim + kOpacityDim;
static_assert(kParamsPerGaussian == 59, "paper layout: 59 params");

/** Selection-critical parameters (frustum culling inputs): pos+scale+rot. */
constexpr int kCriticalDim = kPosDim + kScaleDim + kRotDim;
static_assert(kCriticalDim == 10, "critical attributes are 10 floats");

/** Non-critical parameters (offloaded): SH coefficients + opacity. */
constexpr int kNonCriticalDim = kShDim + kOpacityDim;
static_assert(kNonCriticalDim == 49, "non-critical attributes are 49 floats");

/**
 * Training state multiplier: each parameter stores the value, its gradient,
 * and two Adam moments — four floats total (§2.2).
 */
constexpr int kStatesPerParam = 4;

/** Bytes of model state per Gaussian during training: 59 x 4 x 4 = 944. */
constexpr size_t kModelStateBytesPerGaussian =
    static_cast<size_t>(kParamsPerGaussian) * kStatesPerParam
    * sizeof(float);

/** Bytes of raw parameters per Gaussian (one copy, no optimizer state). */
constexpr size_t kParamBytesPerGaussian =
    static_cast<size_t>(kParamsPerGaussian) * sizeof(float);

/** Bytes of the selection-critical attribute group per Gaussian. */
constexpr size_t kCriticalBytesPerGaussian =
    static_cast<size_t>(kCriticalDim) * sizeof(float);

/** Bytes of the non-critical (offloaded) attribute group per Gaussian. */
constexpr size_t kNonCriticalBytesPerGaussian =
    static_cast<size_t>(kNonCriticalDim) * sizeof(float);

/**
 * Pinned-memory record size for one Gaussian's non-critical attributes:
 * attributes are concatenated and padded so each record is cache-line
 * aligned (§5.2). 49 floats = 196 bytes -> 256 bytes (4 x 64B lines).
 */
constexpr size_t kCacheLineBytes = 64;
constexpr size_t kPaddedNonCriticalBytes =
    ((kNonCriticalBytesPerGaussian + kCacheLineBytes - 1) / kCacheLineBytes)
    * kCacheLineBytes;
static_assert(kPaddedNonCriticalBytes == 256, "49 floats pad to 256 B");

/** The four attribute groups of Table 1. */
enum class Attribute : uint8_t { Position, Scale, Rotation, Sh, Opacity };

/** Offsets of each attribute inside a packed 59-float parameter record. */
constexpr int kPosOffset = 0;
constexpr int kScaleOffset = kPosOffset + kPosDim;
constexpr int kRotOffset = kScaleOffset + kScaleDim;
constexpr int kShOffset = kRotOffset + kRotDim;
constexpr int kOpacityOffset = kShOffset + kShDim;
static_assert(kOpacityOffset + kOpacityDim == kParamsPerGaussian);

/** Offsets inside the packed 49-float non-critical record. */
constexpr int kNcShOffset = 0;
constexpr int kNcOpacityOffset = kNcShOffset + kShDim;

} // namespace clm

#endif // CLM_GAUSSIAN_ATTRIBUTES_HPP
