#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/env.hpp"
#include "util/logging.hpp"

namespace clm {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        // CLM_THREADS pins the default worker count (benchmarks and CI
        // use it for comparable runs), through the shared env-parsing
        // policy (util/env.hpp): unset or garbage (with a warning)
        // falls back to hardware concurrency, numeric values clamp
        // into [1, 1024] rather than spawn unbounded threads.
        const long fallback =
            std::max(1u, std::thread::hardware_concurrency());
        threads = static_cast<unsigned>(
            envInt("CLM_THREADS", fallback, 1, 1024));
    }
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    task_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_cv_.wait(lock,
                          [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CLM_ASSERT(!stop_, "submit after shutdown");
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    size_t chunks = std::min<size_t>(n, threads() * 2);
    if (chunks <= 1) {
        body(0, n);
        return;
    }
    size_t chunk = (n + chunks - 1) / chunks;
    for (size_t begin = 0; begin < n; begin += chunk) {
        size_t end = std::min(begin + chunk, n);
        submit([=, &body] { body(begin, end); });
    }
    wait();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace clm
