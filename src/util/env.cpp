#include "util/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/logging.hpp"

namespace clm {

long
parseIntArg(const char *what, const char *value, long fallback, long min,
            long max)
{
    if (!value)
        return fallback;
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE) {
        warn(what, "=\"", value, "\" is not an integer; using ", fallback);
        return fallback;
    }
    if (v < min)
        v = min;
    if (v > max)
        v = max;
    return v;
}

double
parseDoubleArg(const char *what, const char *value, double fallback,
               double min, double max)
{
    if (!value)
        return fallback;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE || v != v) {
        warn(what, "=\"", value, "\" is not a number; using ", fallback);
        return fallback;
    }
    if (v < min)
        v = min;
    if (v > max)
        v = max;
    return v;
}

long
envInt(const char *name, long fallback, long min, long max)
{
    return parseIntArg(name, std::getenv(name), fallback, min, max);
}

const char *
envChoice(const char *name, const char *const *choices, size_t n_choices,
          const char *fallback)
{
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    for (size_t i = 0; i < n_choices; ++i)
        if (std::strcmp(value, choices[i]) == 0)
            return choices[i];
    std::string known;
    for (size_t i = 0; i < n_choices; ++i) {
        if (i)
            known += "|";
        known += choices[i];
    }
    warn(name, "=\"", value, "\" is not one of ", known, "; ignoring");
    return fallback;
}

} // namespace clm
