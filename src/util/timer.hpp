/**
 * @file
 * Wall-clock timer used for the TSP time budget and harness reporting.
 */

#ifndef CLM_UTIL_TIMER_HPP
#define CLM_UTIL_TIMER_HPP

#include <chrono>

namespace clm {

/** Monotonic wall-clock stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double seconds() const;

    /** Elapsed milliseconds since construction or the last reset(). */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace clm

#endif // CLM_UTIL_TIMER_HPP
