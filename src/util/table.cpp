#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "util/logging.hpp"

namespace clm {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CLM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    CLM_ASSERT(cells.size() == headers_.size(),
               "row has ", cells.size(), " cells, expected ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << " |\n";
    };

    emit_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|" : "-|");
        os << std::string(widths[c] + 2, '-');
    }
    os << "|\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << (c == 0 ? "" : ",") << row[c];
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::fmt(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
Table::fmtBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
    return buf;
}

} // namespace clm
