/**
 * @file
 * Logging and error-reporting helpers in the gem5 spirit: panic() for
 * internal invariant violations, fatal() for unrecoverable user errors,
 * warn()/inform() for status messages that never stop execution.
 */

#ifndef CLM_UTIL_LOGGING_HPP
#define CLM_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace clm {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Global log level; messages above this level are suppressed. */
LogLevel logLevel();

/** Set the global log level. */
void setLogLevel(LogLevel level);

namespace detail {

/** Terminate with a message; used when an internal invariant is broken. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Terminate with a message; used for unrecoverable user/configuration errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Emit a warning to stderr (subject to the global log level). */
void warnImpl(const std::string &msg);

/** Emit an informational message to stderr (subject to the global log level). */
void informImpl(const std::string &msg);

/** Fold a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Emit a warning built from the streamable arguments. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational message built from the streamable arguments. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace clm

/** Abort: something happened that should never happen (a CLM bug). */
#define CLM_PANIC(...) \
    ::clm::detail::panicImpl(__FILE__, __LINE__, \
                             ::clm::detail::concat(__VA_ARGS__))

/** Exit: the run cannot continue due to a user/configuration error. */
#define CLM_FATAL(...) \
    ::clm::detail::fatalImpl(__FILE__, __LINE__, \
                             ::clm::detail::concat(__VA_ARGS__))

/** Check an internal invariant; panics with the stringified condition. */
#define CLM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::clm::detail::panicImpl(__FILE__, __LINE__, \
                ::clm::detail::concat("assertion failed: " #cond " ", \
                                      ##__VA_ARGS__)); \
        } \
    } while (0)

/** CLM_ASSERT compiled only into debug (!NDEBUG) builds — for invariants
 *  on hot paths (e.g. per-row buffer bounds checks). */
#ifdef NDEBUG
#define CLM_DBG_ASSERT(cond, ...) \
    do { \
    } while (0)
#else
#define CLM_DBG_ASSERT(cond, ...) CLM_ASSERT(cond, ##__VA_ARGS__)
#endif

#endif // CLM_UTIL_LOGGING_HPP
