#include "util/timer.hpp"

namespace clm {

double
Timer::seconds() const
{
    auto dt = Clock::now() - start_;
    return std::chrono::duration<double>(dt).count();
}

} // namespace clm
