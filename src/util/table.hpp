/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the rows
 * of each paper table/figure in a uniform, diffable format.
 */

#ifndef CLM_UTIL_TABLE_HPP
#define CLM_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace clm {

/**
 * A simple left-padded text table. Columns are sized to their widest cell.
 * Used by bench binaries so every reproduced table has the same layout.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row of preformatted cells; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render the table (headers, separator, rows) to @p os. */
    void print(std::ostream &os) const;

    /** Render the table as comma-separated values. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Format a double with @p digits fractional digits. */
    static std::string fmt(double value, int digits = 2);

    /** Format a byte count as a human-readable "x.y GB" style string. */
    static std::string fmtBytes(double bytes);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace clm

#endif // CLM_UTIL_TABLE_HPP
