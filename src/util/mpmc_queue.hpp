/**
 * @file
 * Bounded blocking multi-producer/multi-consumer queue — the request
 * funnel of the serving subsystem (serve/render_service.hpp). Supports
 * batch pops so a consumer can drain up to N items in one wakeup, which
 * is what lets the render service coalesce queued view requests into
 * multi-view batches without any artificial batching delay.
 *
 * Beyond the blocking push() there are admission-control intakes: a
 * non-blocking tryPush() (reject-on-full), a timed pushFor() (bounded
 * blocking), and pushDropOldest() (evict the head to make room) — the
 * three shed policies of ServeConfig::admission map onto them. Every
 * intake reports Ok/Full/Closed explicitly and *never consumes the item
 * unless it was enqueued*, so a caller holding a promise inside the
 * item can still fulfill it with a shed/rejected status instead of
 * dropping it. popBatchFiltered() is the deadline-aware pop: expired
 * items are swept out of the queue (all of them, not just the batch
 * cap) and handed back separately so the consumer can fail them fast
 * without rendering.
 */

#ifndef CLM_UTIL_MPMC_QUEUE_HPP
#define CLM_UTIL_MPMC_QUEUE_HPP

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace clm {

/** Result of a queue intake attempt (see MpmcQueue). */
enum class QueuePush
{
    Ok,        //!< Item enqueued (moved from).
    Full,      //!< Queue at capacity; item untouched.
    Closed,    //!< Queue closed; item untouched.
};

/** See file comment. T must be movable. */
template <typename T>
class MpmcQueue
{
  public:
    /** @p capacity bounds the queue; push() blocks while full. */
    explicit MpmcQueue(size_t capacity = 1024) : capacity_(capacity) {}

    /**
     * Enqueue one item; blocks while the queue is at capacity.
     * @return false when the queue was closed (the item is NOT consumed;
     * the caller keeps ownership and can fail it explicitly).
     */
    bool
    push(T &item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Rvalue convenience for callers that don't need the item back. */
    bool
    push(T &&item)
    {
        T moved = std::move(item);
        return push(moved);
    }

    /**
     * Non-blocking enqueue: @p item is moved from only on Ok. Full and
     * Closed leave it untouched so the caller can shed it explicitly.
     */
    QueuePush
    tryPush(T &item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (closed_)
            return QueuePush::Closed;
        if (items_.size() >= capacity_)
            return QueuePush::Full;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Timed enqueue: block up to @p timeout_s seconds for space, then
     * give up with Full. Same ownership contract as tryPush().
     */
    QueuePush
    pushFor(T &item, double timeout_s)
    {
        const auto deadline =
            std::chrono::steady_clock::now()
            + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(timeout_s));
        std::unique_lock<std::mutex> lock(mutex_);
        if (!not_full_.wait_until(lock, deadline, [&] {
                return closed_ || items_.size() < capacity_;
            }))
            return QueuePush::Full;
        if (closed_)
            return QueuePush::Closed;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Enqueue, evicting from the *head* (oldest items) to make room
     * when full. Evicted items are appended to @p evicted so the caller
     * can fail their promises; never returns Full.
     */
    QueuePush
    pushDropOldest(T &item, std::vector<T> &evicted)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (closed_)
            return QueuePush::Closed;
        while (items_.size() >= capacity_ && !items_.empty()) {
            evicted.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Pop up to @p max_items into @p out (cleared first): blocks until
     * at least one item is available, then drains whatever is queued up
     * to the cap — the natural batch-coalescing pop.
     * @return false when the queue is closed and fully drained.
     */
    bool
    popBatch(std::vector<T> &out, size_t max_items)
    {
        out.clear();
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;    // closed and drained — nothing was removed
        while (!items_.empty() && out.size() < max_items) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        lock.unlock();
        // Only notify producers when items were actually removed — a
        // closed-and-drained wakeup frees no capacity.
        not_full_.notify_all();
        return true;
    }

    /**
     * Deadline-aware batch pop: like popBatch(), but items for which
     * @p expired returns true are swept into @p expired_out instead of
     * @p out — ALL of them, front to back, not just the batch cap, so a
     * consumer can fail every already-dead request in one wakeup. Both
     * vectors are cleared first. Blocks until something is queued or
     * the queue closes.
     * @return false only when closed and fully drained; true otherwise
     * (note @p out may be empty when everything queued had expired).
     */
    template <typename ExpiredPred>
    bool
    popBatchFiltered(std::vector<T> &out, size_t max_items,
                     ExpiredPred &&expired, std::vector<T> &expired_out)
    {
        out.clear();
        expired_out.clear();
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;    // closed and drained
        while (!items_.empty() && out.size() < max_items) {
            if (expired(items_.front()))
                expired_out.push_back(std::move(items_.front()));
            else
                out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        // Keep sweeping the remainder for expired items (they would
        // only age further waiting for the next wakeup); fresh items
        // beyond the cap stay queued.
        for (auto it = items_.begin(); it != items_.end();) {
            if (expired(*it)) {
                expired_out.push_back(std::move(*it));
                it = items_.erase(it);
            } else {
                ++it;
            }
        }
        const bool removed = !out.empty() || !expired_out.empty();
        lock.unlock();
        if (removed)
            not_full_.notify_all();
        return true;
    }

    /** Close: pushes fail from now on; pops drain the remainder. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace clm

#endif // CLM_UTIL_MPMC_QUEUE_HPP
