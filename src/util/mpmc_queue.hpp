/**
 * @file
 * Bounded blocking multi-producer/multi-consumer queue — the request
 * funnel of the serving subsystem (serve/render_service.hpp). Supports
 * batch pops so a consumer can drain up to N items in one wakeup, which
 * is what lets the render service coalesce queued view requests into
 * multi-view batches without any artificial batching delay.
 */

#ifndef CLM_UTIL_MPMC_QUEUE_HPP
#define CLM_UTIL_MPMC_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace clm {

/** See file comment. T must be movable. */
template <typename T>
class MpmcQueue
{
  public:
    /** @p capacity bounds the queue; push() blocks while full. */
    explicit MpmcQueue(size_t capacity = 1024) : capacity_(capacity) {}

    /**
     * Enqueue one item; blocks while the queue is at capacity.
     * @return false when the queue was closed (the item is dropped).
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /**
     * Pop up to @p max_items into @p out (cleared first): blocks until
     * at least one item is available, then drains whatever is queued up
     * to the cap — the natural batch-coalescing pop.
     * @return false when the queue is closed and fully drained.
     */
    bool
    popBatch(std::vector<T> &out, size_t max_items)
    {
        out.clear();
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;    // closed and drained
        while (!items_.empty() && out.size() < max_items) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        lock.unlock();
        not_full_.notify_all();
        return true;
    }

    /** Close: pushes fail from now on; pops drain the remainder. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace clm

#endif // CLM_UTIL_MPMC_QUEUE_HPP
