/**
 * @file
 * Minimal blocking thread pool. Used to parallelize the tile rasterizer
 * and the vectorized CPU Adam (the paper's CPU-side work runs across all
 * cores), and to host the dedicated CPU Adam thread of §5.4.
 */

#ifndef CLM_UTIL_THREAD_POOL_HPP
#define CLM_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace clm {

/** Fixed-size worker pool with fork-join parallelFor. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers. 0 selects the default: the CLM_THREADS
     *  environment variable when set (parsed by util/env.hpp — clamped
     *  into [1, 1024]; non-numeric values warn and fall back), else
     *  hardware concurrency — so benchmarks/CI can pin the pool size of
     *  global() without code changes. */
    explicit ThreadPool(unsigned threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Run @p body over [0, n) split into contiguous chunks across the
     * pool (the calling thread also works). Blocks until all chunks are
     * done. @p body receives (begin, end).
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t)> &body);

    /** Enqueue one task; returns immediately. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Process-wide shared pool. */
    static ThreadPool &global();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_cv_;    //!< Wakes workers.
    std::condition_variable done_cv_;    //!< Wakes wait().
    size_t in_flight_ = 0;
    bool stop_ = false;
};

/**
 * Threshold-gated dispatch shared by the per-entry render passes: run
 * @p body over [0, n) through the global pool when @p parallel and the
 * item count makes forking worthwhile, else inline on the caller. ONE
 * definition of the policy — callers pick their threshold constant —
 * so the batched and sharded pipelines cannot drift apart. Only valid
 * for bodies whose items are independent (any split is bitwise
 * neutral).
 */
template <typename Body>
inline void
poolForRange(size_t n, bool parallel, size_t min_parallel,
             const Body &body)
{
    if (parallel && n >= min_parallel)
        ThreadPool::global().parallelFor(n, body);
    else
        body(0, n);
}

} // namespace clm

#endif // CLM_UTIL_THREAD_POOL_HPP
