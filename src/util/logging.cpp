#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace clm {

namespace {

LogLevel g_level = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing (rather than abort()) keeps panics testable from gtest.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace clm
