/**
 * @file
 * Environment-variable parsing shared by every runtime knob (CLM_THREADS,
 * CLM_SIMD, ...). ONE definition of the "garbage rejection" policy: an
 * unset variable silently selects the fallback, a malformed value warns
 * once (to stderr, via util/logging) and selects the fallback — it never
 * silently degrades into a surprising configuration the way a raw
 * strtol(garbage) == 0 would.
 */

#ifndef CLM_UTIL_ENV_HPP
#define CLM_UTIL_ENV_HPP

#include <cstddef>

namespace clm {

/**
 * Parse @p value (e.g. a CLI argument) as a plain base-10 integer
 * clamped into [@p min, @p max]. A malformed value (empty, trailing
 * junk, overflow) warns — attributed to @p what, e.g. "--queue" —
 * and returns @p fallback; out-of-range values clamp. This is the
 * same garbage-rejection policy as envInt, lifted so command-line
 * flags share it instead of rotting on raw atoi().
 */
long parseIntArg(const char *what, const char *value, long fallback,
                 long min, long max);

/** parseIntArg's policy for floating-point values. */
double parseDoubleArg(const char *what, const char *value, double fallback,
                      double min, double max);

/**
 * Read integer environment variable @p name clamped into
 * [@p min, @p max]. Unset returns @p fallback. A value that is not a
 * plain base-10 integer (empty, trailing junk, overflow) warns and
 * returns @p fallback. Values outside the range are clamped (a huge
 * CLM_THREADS should cap, not reject).
 */
long envInt(const char *name, long fallback, long min, long max);

/**
 * Read enumerated environment variable @p name against the
 * @p n_choices strings of @p choices. Returns the matched element of
 * @p choices (pointer identity, so callers can compare against their
 * table), @p fallback when unset, and warns + returns @p fallback on a
 * value matching no choice. Matching is exact and case-sensitive.
 */
const char *envChoice(const char *name, const char *const *choices,
                      size_t n_choices, const char *fallback);

} // namespace clm

#endif // CLM_UTIL_ENV_HPP
