#include "util/fault.hpp"

#include <chrono>
#include <thread>

#include "util/mix.hpp"

namespace clm {

const char *
faultPointName(FaultPoint p)
{
    switch (p) {
    case FaultPoint::WorkerStall: return "worker_stall";
    case FaultPoint::PublishDelay: return "publish_delay";
    case FaultPoint::AdmitSaturate: return "admit_saturate";
    }
    return "unknown";
}

bool
FaultInjector::decide(const FaultSpec &spec, uint64_t index,
                      FaultPoint point)
{
    if (spec.every_n > 0)
        return index % spec.every_n == 0;
    if (spec.probability > 0) {
        const uint64_t draw = splitmix64(
            plan_.seed ^ (static_cast<uint64_t>(point) << 56) ^ index);
        return mixToUnit(draw) < spec.probability;
    }
    return false;
}

bool
FaultInjector::fires(FaultPoint point)
{
    const int i = static_cast<int>(point);
    std::lock_guard<std::mutex> lock(mutex_);
    if (disabled_)
        return false;
    const FaultSpec &spec = plan_.points[i];
    const uint64_t index = occurrences_[i]++;
    if (spec.max_fires >= 0
        && fires_[i] >= static_cast<uint64_t>(spec.max_fires))
        return false;
    if (!decide(spec, index, point))
        return false;
    ++fires_[i];
    return true;
}

bool
FaultInjector::inject(FaultPoint point)
{
    const int i = static_cast<int>(point);
    double stall_ms = 0;
    bool hold = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (disabled_)
            return false;
        const FaultSpec &spec = plan_.points[i];
        const uint64_t index = occurrences_[i]++;
        if (spec.max_fires >= 0
            && fires_[i] >= static_cast<uint64_t>(spec.max_fires))
            return false;
        if (!decide(spec, index, point))
            return false;
        ++fires_[i];
        stall_ms = spec.stall_ms;
        hold = spec.hold;
    }
    if (hold) {
        std::unique_lock<std::mutex> lock(mutex_);
        released_cv_.wait(lock,
                          [&] { return released_[i] || disabled_; });
    } else if (stall_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(stall_ms));
    }
    return true;
}

void
FaultInjector::release(FaultPoint point)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        released_[static_cast<int>(point)] = true;
    }
    released_cv_.notify_all();
}

void
FaultInjector::disable()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        disabled_ = true;
    }
    released_cv_.notify_all();
}

void
FaultInjector::enable()
{
    std::lock_guard<std::mutex> lock(mutex_);
    disabled_ = false;
    released_.fill(false);
}

uint64_t
FaultInjector::occurrences(FaultPoint point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return occurrences_[static_cast<int>(point)];
}

uint64_t
FaultInjector::fireCount(FaultPoint point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fires_[static_cast<int>(point)];
}

} // namespace clm
