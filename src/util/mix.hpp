/**
 * @file
 * SplitMix64 — the standard 64-bit finalizer, shared by every component
 * that needs a *stateless* deterministic decision keyed on integers
 * (latency-reservoir slots, fault-injection firing, retry jitter):
 * hashing (seed ^ index) gives a reproducible per-occurrence draw with
 * no shared RNG whose draw order would depend on thread interleaving.
 */

#ifndef CLM_UTIL_MIX_HPP
#define CLM_UTIL_MIX_HPP

#include <cstdint>

namespace clm {

/** SplitMix64 finalizer: avalanche a 64-bit value. */
inline uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Map a mixed 64-bit value to a uniform double in [0, 1). */
inline double
mixToUnit(uint64_t x)
{
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

} // namespace clm

#endif // CLM_UTIL_MIX_HPP
