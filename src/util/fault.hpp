/**
 * @file
 * Seeded fault injection for the serving stack — tests only. A
 * FaultPlan names *where* faults may fire (FaultPoint), *when* (every
 * Nth occurrence, or a seeded per-occurrence probability), and *what*
 * (a timed stall, or an indefinite hold released by the test), and a
 * FaultInjector executes it. Firing decisions are a pure function of
 * (seed, point, occurrence index) via splitmix64 — no shared RNG whose
 * draw order would depend on thread interleaving — so a fixed plan
 * over a fixed request schedule reproduces the same fault sequence
 * run-to-run, which is what makes shed-set determinism testable.
 *
 * Wiring: ServeConfig::faults covers the service-side points (stalling
 * a worker at the top of its pop loop, forcing the admission path to
 * treat the queue as saturated); SnapshotSlot::setFaultInjector covers
 * delayed snapshot publication. Production code never constructs one —
 * a null injector is zero-cost (one pointer test per site).
 */

#ifndef CLM_UTIL_FAULT_HPP
#define CLM_UTIL_FAULT_HPP

#include <array>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace clm {

/** Injection sites understood by the serving stack. */
enum class FaultPoint : int
{
    WorkerStall = 0,     //!< Top of a RenderService worker's pop loop.
    PublishDelay = 1,    //!< Inside SnapshotSlot::publish, before swap.
    AdmitSaturate = 2,   //!< submit() treats the queue as full (shed).
};
constexpr int kFaultPoints = 3;

/** Name for logs/tests ("worker_stall", ...). */
const char *faultPointName(FaultPoint p);

/** When and how one FaultPoint fires (all disabled by default). */
struct FaultSpec
{
    /** Fire on occurrences where index % every_n == 0 (1 = always).
     *  0 disables the modulo trigger. */
    uint32_t every_n = 0;
    /** Else fire when the seeded per-occurrence draw is < probability.
     *  Deterministic: splitmix64(seed ^ point ^ index) mapped to
     *  [0, 1). */
    double probability = 0;
    /** Cap on total fires at this point (-1 = unlimited). */
    int64_t max_fires = -1;
    /** Timed stall per fire, in milliseconds (ignored if hold). */
    double stall_ms = 0;
    /** Instead of sleeping, block the firing thread until the test
     *  calls release(point) / releaseAll() — the deterministic way to
     *  pin a worker while a test builds queue state. */
    bool hold = false;
};

/** The full plan: a seed plus one spec per injection site. */
struct FaultPlan
{
    uint64_t seed = 0xfa017;
    std::array<FaultSpec, kFaultPoints> points;

    FaultSpec &at(FaultPoint p) { return points[static_cast<int>(p)]; }
    const FaultSpec &
    at(FaultPoint p) const
    {
        return points[static_cast<int>(p)];
    }
};

/**
 * Executes a FaultPlan. Thread-safe: any number of threads may hit any
 * point concurrently; each point keeps its own occurrence counter.
 * releaseAll() (also run on destruction and disable()) unblocks every
 * held thread, so a test that stalls a worker can never wedge the
 * joinery behind it.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}
    ~FaultInjector() { disable(); }

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Record one occurrence of @p point and decide (deterministically)
     * whether it fires, WITHOUT executing the fault. Use this at sites
     * that implement the fault themselves (e.g. the admission path
     * translating AdmitSaturate into a shed status).
     */
    bool fires(FaultPoint point);

    /**
     * Record one occurrence and, if it fires, execute the fault: sleep
     * spec.stall_ms, or block until release when spec.hold is set.
     * Returns true when the fault fired.
     */
    bool inject(FaultPoint point);

    /** Unblock threads currently held at @p point. */
    void release(FaultPoint point);

    /** Unblock everything and stop firing (idempotent). */
    void disable();

    /** Re-arm after disable(); held-release latches are cleared. */
    void enable();

    /** Occurrences seen at @p point so far. */
    uint64_t occurrences(FaultPoint point) const;

    /** Fires executed at @p point so far. */
    uint64_t fireCount(FaultPoint point) const;

  private:
    bool decide(const FaultSpec &spec, uint64_t index, FaultPoint point);

    FaultPlan plan_;
    mutable std::mutex mutex_;
    std::condition_variable released_cv_;
    std::array<uint64_t, kFaultPoints> occurrences_{};
    std::array<uint64_t, kFaultPoints> fires_{};
    std::array<bool, kFaultPoints> released_{};    //!< Hold latches.
    bool disabled_ = false;
};

} // namespace clm

#endif // CLM_UTIL_FAULT_HPP
