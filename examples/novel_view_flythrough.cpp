/**
 * @file
 * Novel-view flythrough: trains an aerial (Rubble-style) reconstruction,
 * then renders a smooth camera path that was never part of the training
 * set, writing PPM frames — novel view synthesis (Figure 1) end to end.
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "core/clm.hpp"

int
main()
{
    using namespace clm;

    ClmConfig config;
    config.scene = SceneSpec::rubble();
    config.scene.train = {2500, 16, 72, 48};
    config.model_size = 2500;
    config.system = SystemKind::Clm;
    config.train.render.sh_degree = 1;
    config.train.loss.ssim_window = 5;

    Clm session(config);
    std::printf("training %zu Gaussians over %zu aerial views...\n",
                session.model().size(), session.viewCount());
    session.train(12);
    std::printf("training PSNR: %.2f dB\n", session.evaluatePsnr());

    // A descending arc over the terrain — none of these cameras exist in
    // the training path.
    const int frames = 8;
    const Vec3 center{0, 0, 1};
    for (int f = 0; f < frames; ++f) {
        float t = static_cast<float>(f) / (frames - 1);
        float ang = 0.6f * t * 6.2831853f;
        float radius = 24.0f - 8.0f * t;
        float height = 16.0f - 6.0f * t;
        Vec3 eye{radius * std::cos(ang), radius * std::sin(ang), height};
        Camera cam = Camera::lookAt(eye, center, {0, 0, 1}, 96, 64, 1.1f,
                                    0.05f, config.scene.camera_z_far);
        Image frame = session.renderNovelView(cam);
        std::string name =
            "flythrough_" + std::to_string(f) + ".ppm";
        frame.writePpm(name);
        std::printf("frame %d: eye (%.1f, %.1f, %.1f) -> %s\n", f, eye.x,
                    eye.y, eye.z, name.c_str());
    }
    std::printf("wrote %d novel-view frames.\n", frames);
    return 0;
}
