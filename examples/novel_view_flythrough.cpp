/**
 * @file
 * Novel-view flythrough: trains an aerial (Rubble-style) reconstruction,
 * then renders a smooth camera path that was never part of the training
 * set — novel view synthesis (Figure 1) end to end.
 *
 * The frames are served through the RenderService rather than rendered
 * inline: all path cameras are submitted up front, the service coalesces
 * them into fused multi-view batches against the session's published
 * model snapshot, and the futures come back in submission order. The
 * frames are bitwise identical to direct renderNovelView() calls —
 * batching is a scheduling choice, never a quality choice.
 */

#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "core/clm.hpp"
#include "serve/render_service.hpp"

int
main()
{
    using namespace clm;

    ClmConfig config;
    config.scene = SceneSpec::rubble();
    config.scene.train = {2500, 16, 72, 48};
    config.model_size = 2500;
    config.system = SystemKind::Clm;
    config.train.render.sh_degree = 1;
    config.train.loss.ssim_window = 5;

    Clm session(config);
    std::printf("training %zu Gaussians over %zu aerial views...\n",
                session.model().size(), session.viewCount());
    session.train(12);
    std::printf("training PSNR: %.2f dB\n", session.evaluatePsnr());

    // Serve the flythrough from the published training snapshot,
    // coalescing the requests into fused multi-view batches.
    ServeConfig serve_config;
    serve_config.max_batch = 4;
    serve_config.render = config.train.render;
    RenderService service(session.snapshots(), serve_config);

    // A descending arc over the terrain — none of these cameras exist in
    // the training path.
    const int frames = 8;
    const Vec3 center{0, 0, 1};
    std::vector<std::future<RenderResponse>> pending;
    for (int f = 0; f < frames; ++f) {
        float t = static_cast<float>(f) / (frames - 1);
        float ang = 0.6f * t * 6.2831853f;
        float radius = 24.0f - 8.0f * t;
        float height = 16.0f - 6.0f * t;
        Vec3 eye{radius * std::cos(ang), radius * std::sin(ang), height};
        Camera cam = Camera::lookAt(eye, center, {0, 0, 1}, 96, 64, 1.1f,
                                    0.05f, config.scene.camera_z_far);
        pending.push_back(service.submit(cam));
    }
    for (int f = 0; f < frames; ++f) {
        RenderResponse resp = pending[f].get();
        std::string name = "flythrough_" + std::to_string(f) + ".ppm";
        resp.image.writePpm(name);
        std::printf(
            "frame %d (snapshot v%llu, batch of %d) -> %s\n", f,
            static_cast<unsigned long long>(resp.snapshot_version),
            resp.batch_size, name.c_str());
    }
    service.stop();
    ServeStats stats = service.stats();
    std::printf("wrote %d novel-view frames (%llu batches, mean batch "
                "%.1f).\n",
                frames, static_cast<unsigned long long>(stats.batches),
                stats.mean_batch);
    return 0;
}
