/**
 * @file
 * Novel-view flythrough: trains an aerial (Rubble-style) reconstruction,
 * then renders a smooth camera path that was never part of the training
 * set — novel view synthesis (Figure 1) end to end.
 *
 * The frames are served through the RenderService rather than rendered
 * inline: all path cameras are submitted up front, the service coalesces
 * them into fused multi-view batches against the session's published
 * model snapshot, and the futures come back in submission order. The
 * frames are bitwise identical to direct renderNovelView() calls —
 * batching is a scheduling choice, never a quality choice.
 *
 * The service deliberately runs with a queue shorter than the path and
 * ShedPolicy::Reject, so the burst of up-front submissions oversubscribes
 * it and some frames come back shed rather than rendered. Those frames
 * are re-requested through the seeded RetryPolicy (capped exponential
 * backoff + deterministic jitter) — the client-side half of graceful
 * degradation: overload turns into retries, never into missing frames.
 */

#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "core/clm.hpp"
#include "serve/render_service.hpp"
#include "serve/retry.hpp"

int
main()
{
    using namespace clm;

    ClmConfig config;
    config.scene = SceneSpec::rubble();
    config.scene.train = {2500, 16, 72, 48};
    config.model_size = 2500;
    config.system = SystemKind::Clm;
    config.train.render.sh_degree = 1;
    config.train.loss.ssim_window = 5;

    Clm session(config);
    std::printf("training %zu Gaussians over %zu aerial views...\n",
                session.model().size(), session.viewCount());
    session.train(12);
    std::printf("training PSNR: %.2f dB\n", session.evaluatePsnr());

    // Serve the flythrough from the published training snapshot,
    // coalescing the requests into fused multi-view batches.
    ServeConfig serve_config;
    serve_config.max_batch = 4;
    serve_config.render = config.train.render;
    // Oversubscribe on purpose: the 8-frame burst against a 4-deep
    // Reject queue sheds some submissions, which the retry pass below
    // recovers.
    serve_config.queue_capacity = 4;
    serve_config.admission.shed = ShedPolicy::Reject;
    RenderService service(session.snapshots(), serve_config);

    // A descending arc over the terrain — none of these cameras exist in
    // the training path.
    const int frames = 8;
    const Vec3 center{0, 0, 1};
    std::vector<Camera> path;
    std::vector<std::future<RenderResponse>> pending;
    for (int f = 0; f < frames; ++f) {
        float t = static_cast<float>(f) / (frames - 1);
        float ang = 0.6f * t * 6.2831853f;
        float radius = 24.0f - 8.0f * t;
        float height = 16.0f - 6.0f * t;
        Vec3 eye{radius * std::cos(ang), radius * std::sin(ang), height};
        path.push_back(Camera::lookAt(eye, center, {0, 0, 1}, 96, 64,
                                      1.1f, 0.05f,
                                      config.scene.camera_z_far));
        pending.push_back(service.submit(path.back()));
    }

    // First pass: collect what the burst admitted. Second pass: any
    // shed frame is re-requested through the deterministic RetryPolicy.
    RetryPolicy retry;
    RetryStats retry_stats;
    int shed = 0;
    for (int f = 0; f < frames; ++f) {
        RenderResponse resp = pending[f].get();
        if (!resp.ok()) {
            ++shed;
            std::printf("frame %d shed (%s) — retrying\n", f,
                        serveStatusName(resp.status));
            resp = submitWithRetry(service, path[f], /*client_id=*/1,
                                   retry, /*request_key=*/f,
                                   &retry_stats);
            if (!resp.ok()) {
                std::printf("frame %d failed after %llu attempts (%s)\n",
                            f,
                            static_cast<unsigned long long>(
                                retry_stats.attempts),
                            serveStatusName(resp.status));
                return 1;
            }
        }
        std::string name = "flythrough_" + std::to_string(f) + ".ppm";
        resp.image.writePpm(name);
        std::printf(
            "frame %d (snapshot v%llu, batch of %d) -> %s\n", f,
            static_cast<unsigned long long>(resp.snapshot_version),
            resp.batch_size, name.c_str());
    }
    service.stop();
    ServeStats stats = service.stats();
    std::printf("wrote %d novel-view frames (%llu batches, mean batch "
                "%.1f; %d shed on first submit, all recovered via the "
                "retry pass with %llu backoff retries).\n",
                frames, static_cast<unsigned long long>(stats.batches),
                stats.mean_batch, shed,
                static_cast<unsigned long long>(retry_stats.retries));
    return 0;
}
