/**
 * @file
 * Command-line driver: train any scene preset with any of the four
 * systems and export the result — the entry point a downstream user
 * scripts against.
 *
 * Usage:
 *   clm_cli [--scene NAME] [--system clm|baseline|enhanced|naive]
 *           [--model-size N] [--steps N] [--async-adam] [--densify]
 *           [--save model.bin] [--ply points.ply] [--render out.ppm]
 *
 *   clm_cli serve [--scene NAME] [--system ...] [--steps N]
 *                 [--clients N] [--requests N] [--max-batch N]
 *                 [--shards N] [--shed block|reject|drop-oldest]
 *                 [--deadline-ms N] [--queue N] [--trace-out FILE]
 *                 [--metrics-out FILE] [--metrics-every-ms N]
 *                 [--slo FILE|SPEC]
 *
 * The serve subcommand trains briefly, then keeps training in the
 * background while N synthetic clients walk the scene's camera path and
 * request views from a RenderService — the live-model serving loop:
 * training republishes a model snapshot every batch, clients render
 * from whatever snapshot is current, and requests are coalesced into
 * fused multi-view batches. With --shards N every published snapshot is
 * additionally carved into N spatial shards and each request's frustum
 * is routed against the shard AABBs, rendering only the shards it can
 * see — frames stay bitwise identical to unsharded serving.
 *
 * --shed selects the admission policy (default from CLM_SHED, else
 * block) and --deadline-ms bounds how stale a queued request may get
 * before it is shed at dequeue. Clients submit through the seeded
 * RetryPolicy, so shed responses degrade to deterministic
 * backoff-and-retry instead of errors; per-client retry totals are
 * reported next to the service's shed counters.
 *
 * Observability: --trace-out FILE (default: the CLM_TRACE env var)
 * enables the span tracer for the whole serve run and dumps a Chrome
 * trace-event JSON on exit (load it in Perfetto or chrome://tracing).
 * --metrics-out FILE streams periodic JSON-lines snapshots of the
 * unified metrics registry (serve.* counters and the queue-wait /
 * render-time histograms, plus the offload trainers' stage timings)
 * every --metrics-every-ms (default 100).
 *
 * --slo takes an SLO rule spec (a file path, or the spec inline with
 * ';' separating rules — see obs/slo.hpp for the grammar) and watches
 * the run with an SloMonitor: verdict transitions print live, verdict
 * gauges ride the metrics.jsonl stream, Breached windows record
 * slo.breach spans into the trace, and the run ends with a final
 * "[slo] verdict:" line over the whole serve window. Without --slo a
 * permissive default rule set (deadline-shed ratio + latency p99)
 * still produces the final verdict line.
 *
 * Numeric arguments go through the util/env clamping policy: garbage
 * warns and falls back to the default instead of silently becoming 0.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/clm.hpp"
#include "gaussian/io.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/render_service.hpp"
#include "serve/retry.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "train/clm_trainer.hpp"
#include "train/naive_offload_trainer.hpp"

namespace {

using namespace clm;

SystemKind
parseSystem(const std::string &name)
{
    if (name == "clm")
        return SystemKind::Clm;
    if (name == "baseline")
        return SystemKind::Baseline;
    if (name == "enhanced")
        return SystemKind::EnhancedBaseline;
    if (name == "naive")
        return SystemKind::NaiveOffload;
    CLM_FATAL("unknown system: ", name,
              " (expected clm|baseline|enhanced|naive)");
}

ShedPolicy
parseShed(const std::string &name)
{
    if (name == "block")
        return ShedPolicy::Block;
    if (name == "reject")
        return ShedPolicy::Reject;
    if (name == "drop-oldest")
        return ShedPolicy::DropOldest;
    CLM_FATAL("unknown shed policy: ", name,
              " (expected block|reject|drop-oldest)");
}

/** --shed default: CLM_SHED env var, else "block". */
std::string
defaultShed()
{
    static const char *const kChoices[] = {"block", "reject",
                                           "drop-oldest"};
    return envChoice("CLM_SHED", kChoices, 3, "block");
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--scene NAME] [--system clm|baseline|enhanced|naive]\n"
        "          [--model-size N] [--steps N] [--async-adam]\n"
        "          [--densify] [--save FILE] [--ply FILE] "
        "[--render FILE]\n"
        "       %s serve [--scene NAME] [--system ...] [--steps N]\n"
        "          [--clients N] [--requests N] [--max-batch N]\n"
        "          [--shards N] [--shed block|reject|drop-oldest]\n"
        "          [--deadline-ms N] [--queue N] [--trace-out FILE]\n"
        "          [--metrics-out FILE] [--metrics-every-ms N]\n"
        "          [--slo FILE|SPEC]\n"
        "scenes: Bicycle Rubble Alameda Ithaca BigCity\n"
        "env: CLM_TRACE=FILE enables tracing (same as --trace-out)\n"
        "slo spec: 'hist M pP [warn W] fail F', 'ratio A / B [warn W]"
        " fail F',\n"
        "          'gauge M [warn W] fail F' — one per line or"
        " ';'-separated\n",
        argv0, argv0);
    std::exit(2);
}

/** --slo value: a readable file's contents, else the value itself as
 *  an inline spec ruleset. */
std::string
loadSloSpec(const std::string &arg)
{
    std::ifstream in(arg);
    if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }
    return arg;
}

/** Permissive default rules so every serve run ends with a verdict:
 *  deadline sheds should stay rare relative to rendered requests, and
 *  end-to-end p99 should stay interactive. */
const char *const kDefaultSloSpec =
    "ratio serve.shed_deadline / serve.requests warn 0.25 fail 1\n"
    "hist serve.latency_ms p99 warn 1000 fail 5000\n";

/**
 * The serve mode: brief warm-up training, then concurrent
 * train-and-serve — a background thread keeps running batches (each one
 * republishes the model snapshot) while client threads walk the
 * training camera path against the RenderService.
 */
int
runServe(Clm &session, int warmup_steps, int n_clients, int n_requests,
         int max_batch, int shards, ShedPolicy shed, double deadline_ms,
         int queue_capacity, const std::string &trace_path,
         const std::string &metrics_path, double metrics_every_ms,
         const std::string &slo_spec)
{
    const auto run_t0 = std::chrono::steady_clock::now();
    const auto elapsed_s = [run_t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - run_t0)
            .count();
    };
    // Tracing covers the whole run (warm-up training included) so the
    // exported trace shows train.* spans next to the serve.* ones.
    const bool tracing = !trace_path.empty();
    if (tracing) {
        Tracer::global().clear();
        Tracer::enable(&Tracer::global());
        std::printf("[obs] tracing enabled -> %s\n", trace_path.c_str());
    }
    // One registry for everything: the service reports through it
    // (ServeConfig::metrics below) and the trainer's stage timings are
    // exported into it at shutdown, so a single JSON-lines stream
    // carries the full serve+train picture.
    MetricsRegistry registry;

    std::printf("[serve] warm-up: %d training steps...\n", warmup_steps);
    session.train(warmup_steps);
    std::printf("[serve] PSNR after warm-up: %.2f dB\n",
                session.evaluatePsnr());

    ServeConfig serve_config;
    serve_config.workers = 1;
    serve_config.max_batch = max_batch;
    serve_config.render = session.config().train.render;
    if (queue_capacity > 0)
        serve_config.queue_capacity =
            static_cast<size_t>(queue_capacity);
    serve_config.admission.shed = shed;
    serve_config.admission.deadline_s = deadline_ms / 1e3;
    serve_config.metrics = &registry;
    // Sharded mode carves every published snapshot into spatial shards
    // and frustum-routes each request; unsharded serves the whole
    // model. Frames are bitwise identical either way.
    std::unique_ptr<RenderService> service_ptr;
    if (shards > 0) {
        std::printf("[serve] sharded serving: %d spatial shards\n",
                    shards);
        service_ptr = std::make_unique<RenderService>(
            session.enableSharding(shards), serve_config);
    } else {
        service_ptr = std::make_unique<RenderService>(
            session.snapshots(), serve_config);
    }
    RenderService &service = *service_ptr;

    // SLO monitor over the same registry. Constructed after the
    // service so the serve.* metrics it watches are registered; its
    // baseline snapshot is the pre-traffic state.
    int slo_parse_errors = 0;
    std::vector<SloRule> slo_rules =
        parseSloRules(slo_spec, &slo_parse_errors);
    if (slo_rules.empty()) {
        if (slo_parse_errors > 0)
            warn("--slo: no usable rules parsed; using defaults");
        slo_rules = parseSloRules(kDefaultSloSpec);
    }
    for (const SloRule &r : slo_rules)
        std::printf("[slo] rule: %s\n", formatSloRule(r).c_str());
    SloMonitor slo(registry, slo_rules);

    std::unique_ptr<MetricsExporter> exporter;
    if (!metrics_path.empty()) {
        exporter = std::make_unique<MetricsExporter>(
            registry, metrics_path,
            metrics_every_ms > 0 ? metrics_every_ms : 100.0);
        std::printf("[obs] metrics snapshots every %.0f ms -> %s\n",
                    metrics_every_ms > 0 ? metrics_every_ms : 100.0,
                    metrics_path.c_str());
        // Tick the monitor right before each metrics line so the
        // slo.* verdict gauges land in the line being written; print
        // verdict TRANSITIONS live (steady health stays quiet).
        auto last_verdict =
            std::make_shared<std::atomic<int>>(-1);
        exporter->setTickHook([&slo, last_verdict](double ts_s) {
            const SloReport rep = slo.tick(ts_s);
            const int v = static_cast<int>(rep.verdict);
            if (v != last_verdict->exchange(v))
                std::printf("[slo] t=%.2fs %s\n", ts_s,
                            rep.summary().c_str());
        });
    }

    // Training continues while clients are served; every batch
    // republishes the snapshot the service renders from.
    std::atomic<bool> stop_training{false};
    std::thread training([&] {
        while (!stop_training.load())
            session.train(1);
    });

    std::printf(
        "[serve] %d clients, %d total requests, max_batch=%d, training "
        "in the background...\n",
        n_clients, n_requests, max_batch);
    // Clients go through the seeded RetryPolicy: a shed or throttled
    // response becomes a deterministic capped-backoff retry, never an
    // error surfaced to the caller.
    std::atomic<int> budget{n_requests};
    RetryPolicy retry;
    std::vector<RetryStats> client_retries(
        static_cast<size_t>(n_clients));
    std::atomic<uint64_t> gave_up_total{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
            size_t pos = static_cast<size_t>(c) * session.viewCount()
                       / static_cast<size_t>(n_clients);
            RetryStats &rs = client_retries[static_cast<size_t>(c)];
            while (budget.fetch_sub(1) > 0) {
                RenderResponse resp = submitWithRetry(
                    service, session.camera(pos % session.viewCount()),
                    /*client_id=*/static_cast<uint64_t>(c) + 1, retry,
                    /*request_key=*/pos, &rs);
                if (!resp.ok())
                    gave_up_total.fetch_add(1);
                ++pos;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    stop_training = true;
    training.join();
    service.stop();

    ServeStats stats = service.stats();
    std::printf(
        "[serve] %llu requests in %llu batches (mean batch %.2f)\n",
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.batches), stats.mean_batch);
    std::printf("[serve] throughput %.1f req/s, latency p50 %.1f ms, "
                "p99 %.1f ms\n",
                stats.requests_per_s, stats.p50_ms, stats.p99_ms);
    std::printf("[serve] latency decomposition: queue-wait p50 %.1f / "
                "p99 %.1f ms, render p50 %.1f / p99 %.1f ms\n",
                stats.queue_wait_p50_ms, stats.queue_wait_p99_ms,
                stats.render_p50_ms, stats.render_p99_ms);
    uint64_t retries = 0, backoffs_us = 0;
    for (const RetryStats &rs : client_retries) {
        retries += rs.retries;
        backoffs_us += static_cast<uint64_t>(rs.backoff_s * 1e6);
    }
    std::printf(
        "[serve] admission: %llu submitted, %llu shed (queue-full "
        "%llu, deadline %llu), %llu throttled, %llu retries "
        "(%.1f ms backoff), %llu gave up\n",
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.shed_queue_full
                                        + stats.shed_deadline),
        static_cast<unsigned long long>(stats.shed_queue_full),
        static_cast<unsigned long long>(stats.shed_deadline),
        static_cast<unsigned long long>(stats.throttled_client),
        static_cast<unsigned long long>(retries), backoffs_us / 1e3,
        static_cast<unsigned long long>(gave_up_total.load()));
    if (stats.sharded_requests > 0)
        std::printf("[serve] frustum routing: %.2f/%d shards rendered "
                    "per request (%.0f%% pruned)\n",
                    stats.mean_shards_selected, shards,
                    stats.mean_shard_frac_pruned * 100.0);
    std::printf("[serve] batch occupancy:");
    for (size_t k = 0; k < stats.batch_occupancy.size(); ++k)
        std::printf(" %zux%llu", k + 1,
                    static_cast<unsigned long long>(
                        stats.batch_occupancy[k]));
    if (stats.mean_batch_shards > 0)
        std::printf(" (mean %.2f shards/batch)", stats.mean_batch_shards);
    std::printf("\n");
    std::printf(
        "[serve] snapshots served: versions %llu..%llu (training "
        "advanced the model %llu times mid-serve)\n",
        static_cast<unsigned long long>(stats.min_snapshot_version),
        static_cast<unsigned long long>(stats.max_snapshot_version),
        static_cast<unsigned long long>(stats.max_snapshot_version
                                        - stats.min_snapshot_version));
    std::printf("[serve] PSNR after serving: %.2f dB\n",
                session.evaluatePsnr());

    // Offload trainers account their pipeline stages in StageTimings;
    // fold them into the registry so the final metrics snapshot (and
    // the exporter's last line) carries the training-side breakdown.
    if (const auto *clm_trainer =
            dynamic_cast<const ClmTrainer *>(&session.trainer()))
        clm_trainer->stageTimings().exportTo(registry);
    else if (const auto *naive =
                 dynamic_cast<const NaiveOffloadTrainer *>(
                     &session.trainer()))
        naive->stageTimings().exportTo(registry);
    if (exporter != nullptr) {
        exporter->stop();
        std::printf("[obs] metrics: %d snapshots -> %s\n",
                    exporter->snapshots(), metrics_path.c_str());
    }
    // Final verdict over the WHOLE serve window (warm-up excluded:
    // the monitor's baseline snapshot predates traffic, not training;
    // training metrics are counters the rules don't bound).
    const SloReport slo_final = slo.total(elapsed_s());
    std::printf("[slo] windows evaluated: %d, worst %s\n", slo.ticks(),
                sloVerdictName(slo.worstVerdict()));
    std::printf("[slo] verdict: %s\n", slo_final.summary().c_str());
    if (tracing) {
        // Workers and clients are joined: quiescent, safe to disable
        // and export.
        Tracer::enable(nullptr);
        const TraceStats ts = Tracer::global().stats();
        if (Tracer::global().writeChromeTraceFile(trace_path))
            std::printf("[obs] trace: %llu spans (%llu dropped) from "
                        "%llu threads -> %s\n",
                        static_cast<unsigned long long>(ts.recorded),
                        static_cast<unsigned long long>(ts.dropped),
                        static_cast<unsigned long long>(ts.threads),
                        trace_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace clm;

    std::string scene_name = "Bicycle";
    std::string system_name = "clm";
    std::string save_path, ply_path, render_path;
    size_t model_size = 0;
    int steps = 10;
    bool async_adam = false;
    bool densify = false;
    bool serve_mode = false;
    int clients = 4;
    int requests = 64;
    int max_batch = 4;
    int shards = 0;
    std::string shed_name = defaultShed();
    double deadline_ms = 0;
    int queue_capacity = 0;
    std::string trace_path = traceEnvPath();    // CLM_TRACE default
    std::string metrics_path;
    double metrics_every_ms = 0;
    std::string slo_arg;

    int argi = 1;
    if (argi < argc && !std::strcmp(argv[argi], "serve")) {
        serve_mode = true;
        steps = 4;    // serve default: brief warm-up
        ++argi;
    }
    for (int i = argi; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scene"))
            scene_name = need_value("--scene");
        else if (!std::strcmp(argv[i], "--system"))
            system_name = need_value("--system");
        else if (!std::strcmp(argv[i], "--model-size"))
            model_size = std::strtoull(
                need_value("--model-size").c_str(), nullptr, 10);
        else if (!std::strcmp(argv[i], "--steps"))
            steps = static_cast<int>(parseIntArg(
                "--steps", need_value("--steps").c_str(), steps, 0,
                1000000));
        else if (!std::strcmp(argv[i], "--async-adam"))
            async_adam = true;
        else if (!std::strcmp(argv[i], "--densify"))
            densify = true;
        else if (!std::strcmp(argv[i], "--save"))
            save_path = need_value("--save");
        else if (!std::strcmp(argv[i], "--ply"))
            ply_path = need_value("--ply");
        else if (!std::strcmp(argv[i], "--render"))
            render_path = need_value("--render");
        else if (serve_mode && !std::strcmp(argv[i], "--clients"))
            clients = static_cast<int>(parseIntArg(
                "--clients", need_value("--clients").c_str(), clients,
                1, 4096));
        else if (serve_mode && !std::strcmp(argv[i], "--requests"))
            requests = static_cast<int>(parseIntArg(
                "--requests", need_value("--requests").c_str(),
                requests, 1, 100000000));
        else if (serve_mode && !std::strcmp(argv[i], "--max-batch"))
            max_batch = static_cast<int>(parseIntArg(
                "--max-batch", need_value("--max-batch").c_str(),
                max_batch, 1, 1024));
        else if (serve_mode && !std::strcmp(argv[i], "--shards"))
            shards = static_cast<int>(parseIntArg(
                "--shards", need_value("--shards").c_str(), shards, 0,
                1024));
        else if (serve_mode && !std::strcmp(argv[i], "--shed"))
            shed_name = need_value("--shed");
        else if (serve_mode && !std::strcmp(argv[i], "--deadline-ms"))
            deadline_ms = parseDoubleArg(
                "--deadline-ms", need_value("--deadline-ms").c_str(),
                deadline_ms, 0, 1e9);
        else if (serve_mode && !std::strcmp(argv[i], "--queue"))
            queue_capacity = static_cast<int>(parseIntArg(
                "--queue", need_value("--queue").c_str(),
                queue_capacity, 0, 1 << 20));
        else if (serve_mode && !std::strcmp(argv[i], "--trace-out"))
            trace_path = need_value("--trace-out");
        else if (serve_mode && !std::strcmp(argv[i], "--metrics-out"))
            metrics_path = need_value("--metrics-out");
        else if (serve_mode
                 && !std::strcmp(argv[i], "--metrics-every-ms"))
            metrics_every_ms = parseDoubleArg(
                "--metrics-every-ms",
                need_value("--metrics-every-ms").c_str(),
                metrics_every_ms, 0, 1e7);
        else if (serve_mode && !std::strcmp(argv[i], "--slo"))
            slo_arg = need_value("--slo");
        else
            usage(argv[0]);
    }

    ClmConfig config;
    config.scene = SceneSpec::byName(scene_name);
    // CLI default profile: quick CPU-friendly sizes.
    config.scene.train = {3000, 16, 64, 48};
    config.system = parseSystem(system_name);
    config.model_size = model_size;
    config.train.render.sh_degree = 1;
    config.train.loss.ssim_window = 5;
    config.train.async_adam = async_adam;

    Clm session(config);
    if (densify)
        session.trainer().enableDensification();

    std::printf("[clm] scene=%s system=%s model=%zu views=%zu steps=%d\n",
                scene_name.c_str(), systemName(config.system),
                session.model().size(), session.viewCount(), steps);

    if (serve_mode) {
        // --metrics-every-ms without an explicit path still streams.
        if (metrics_path.empty() && metrics_every_ms > 0)
            metrics_path = "metrics.jsonl";
        return runServe(session, steps, clients, requests, max_batch,
                        shards, parseShed(shed_name), deadline_ms,
                        queue_capacity, trace_path, metrics_path,
                        metrics_every_ms,
                        slo_arg.empty() ? std::string()
                                        : loadSloSpec(slo_arg));
    }

    double psnr0 = session.evaluatePsnr();
    int done = 0;
    while (done < steps) {
        int chunk = std::min(5, steps - done);
        auto stats = session.train(chunk);
        done += chunk;
        std::printf("[clm] step %3d/%d  loss=%.4f  h2d=%.2f MB\n", done,
                    steps, stats.back().loss,
                    stats.back().h2d_bytes / 1e6);
        if (densify && done < steps) {
            DensifyStats ds = session.trainer().densifyNow();
            std::printf(
                "[clm] densify: +%zu cloned, %zu split, -%zu pruned "
                "-> %zu gaussians\n",
                ds.cloned, ds.split, ds.pruned, ds.resulting_size);
        }
    }
    std::printf("[clm] PSNR %.2f -> %.2f dB\n", psnr0,
                session.evaluatePsnr());

    if (!save_path.empty()) {
        saveModel(session.model(), save_path);
        std::printf("[clm] checkpoint -> %s\n", save_path.c_str());
    }
    if (!ply_path.empty()) {
        exportPly(session.model(), ply_path);
        std::printf("[clm] point cloud -> %s\n", ply_path.c_str());
    }
    if (!render_path.empty()) {
        session.renderView(0).writePpm(render_path);
        std::printf("[clm] view 0 -> %s\n", render_path.c_str());
    }
    return 0;
}
