/**
 * @file
 * Command-line driver: train any scene preset with any of the four
 * systems and export the result — the entry point a downstream user
 * scripts against.
 *
 * Usage:
 *   clm_cli [--scene NAME] [--system clm|baseline|enhanced|naive]
 *           [--model-size N] [--steps N] [--async-adam] [--densify]
 *           [--save model.bin] [--ply points.ply] [--render out.ppm]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/clm.hpp"
#include "gaussian/io.hpp"
#include "util/logging.hpp"
#include "train/clm_trainer.hpp"

namespace {

using namespace clm;

SystemKind
parseSystem(const std::string &name)
{
    if (name == "clm")
        return SystemKind::Clm;
    if (name == "baseline")
        return SystemKind::Baseline;
    if (name == "enhanced")
        return SystemKind::EnhancedBaseline;
    if (name == "naive")
        return SystemKind::NaiveOffload;
    CLM_FATAL("unknown system: ", name,
              " (expected clm|baseline|enhanced|naive)");
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--scene NAME] [--system clm|baseline|enhanced|naive]\n"
        "          [--model-size N] [--steps N] [--async-adam]\n"
        "          [--densify] [--save FILE] [--ply FILE] "
        "[--render FILE]\n"
        "scenes: Bicycle Rubble Alameda Ithaca BigCity\n",
        argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace clm;

    std::string scene_name = "Bicycle";
    std::string system_name = "clm";
    std::string save_path, ply_path, render_path;
    size_t model_size = 0;
    int steps = 10;
    bool async_adam = false;
    bool densify = false;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scene"))
            scene_name = need_value("--scene");
        else if (!std::strcmp(argv[i], "--system"))
            system_name = need_value("--system");
        else if (!std::strcmp(argv[i], "--model-size"))
            model_size = std::strtoull(
                need_value("--model-size").c_str(), nullptr, 10);
        else if (!std::strcmp(argv[i], "--steps"))
            steps = std::atoi(need_value("--steps").c_str());
        else if (!std::strcmp(argv[i], "--async-adam"))
            async_adam = true;
        else if (!std::strcmp(argv[i], "--densify"))
            densify = true;
        else if (!std::strcmp(argv[i], "--save"))
            save_path = need_value("--save");
        else if (!std::strcmp(argv[i], "--ply"))
            ply_path = need_value("--ply");
        else if (!std::strcmp(argv[i], "--render"))
            render_path = need_value("--render");
        else
            usage(argv[0]);
    }

    ClmConfig config;
    config.scene = SceneSpec::byName(scene_name);
    // CLI default profile: quick CPU-friendly sizes.
    config.scene.train = {3000, 16, 64, 48};
    config.system = parseSystem(system_name);
    config.model_size = model_size;
    config.train.render.sh_degree = 1;
    config.train.loss.ssim_window = 5;
    config.train.async_adam = async_adam;

    Clm session(config);
    if (densify)
        session.trainer().enableDensification();

    std::printf("[clm] scene=%s system=%s model=%zu views=%zu steps=%d\n",
                scene_name.c_str(), systemName(config.system),
                session.model().size(), session.viewCount(), steps);

    double psnr0 = session.evaluatePsnr();
    int done = 0;
    while (done < steps) {
        int chunk = std::min(5, steps - done);
        auto stats = session.train(chunk);
        done += chunk;
        std::printf("[clm] step %3d/%d  loss=%.4f  h2d=%.2f MB\n", done,
                    steps, stats.back().loss,
                    stats.back().h2d_bytes / 1e6);
        if (densify && done < steps) {
            DensifyStats ds = session.trainer().densifyNow();
            std::printf(
                "[clm] densify: +%zu cloned, %zu split, -%zu pruned "
                "-> %zu gaussians\n",
                ds.cloned, ds.split, ds.pruned, ds.resulting_size);
        }
    }
    std::printf("[clm] PSNR %.2f -> %.2f dB\n", psnr0,
                session.evaluatePsnr());

    if (!save_path.empty()) {
        saveModel(session.model(), save_path);
        std::printf("[clm] checkpoint -> %s\n", save_path.c_str());
    }
    if (!ply_path.empty()) {
        exportPly(session.model(), ply_path);
        std::printf("[clm] point cloud -> %s\n", ply_path.c_str());
    }
    if (!render_path.empty()) {
        session.renderView(0).writePpm(render_path);
        std::printf("[clm] view 0 -> %s\n", render_path.c_str());
    }
    return 0;
}
