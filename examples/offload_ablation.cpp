/**
 * @file
 * Offload-knob ablation: runs the same training batch under every
 * ordering strategy with caching on and off, showing that (a) the knobs
 * change communication volume dramatically, and (b) they never change
 * the training result — the learned parameters agree to float tolerance
 * with plain GPU-only training.
 */

#include <cmath>
#include <cstdio>

#include "scene/camera_path.hpp"
#include "scene/synthetic.hpp"
#include "train/clm_trainer.hpp"
#include "train/quality_harness.hpp"

int
main()
{
    using namespace clm;

    SceneSpec spec = SceneSpec::rubble();
    spec.train = {1500, 10, 56, 56};
    GaussianModel gt = generateGroundTruth(spec, 1500);
    auto cameras = trainCameras(spec);

    TrainConfig base_cfg;
    base_cfg.batch_size = 6;
    base_cfg.render.sh_degree = 1;
    base_cfg.loss.ssim_window = 5;
    auto gt_images = renderGroundTruth(gt, cameras, base_cfg.render);
    std::vector<int> batch{0, 2, 4, 5, 7, 9};

    // Reference: GPU-only training of the identical batch.
    GpuOnlyTrainer reference(makeTrainee(gt, 900, 7), cameras, gt_images,
                             base_cfg);
    reference.trainBatch(batch);

    std::printf("%-16s %-7s %12s %12s %10s %12s\n", "Ordering", "Cache",
                "Loaded (MB)", "Stored (MB)", "Hits", "MaxDiff");
    for (OrderingStrategy ord : allOrderingStrategies()) {
        for (bool cache : {true, false}) {
            TrainConfig cfg = base_cfg;
            cfg.planner.ordering = ord;
            cfg.planner.enable_cache = cache;
            ClmTrainer trainer(makeTrainee(gt, 900, 7), cameras,
                               gt_images, cfg);
            BatchStats s = trainer.trainBatch(batch);

            // Max parameter deviation from the GPU-only result.
            double max_diff = 0;
            for (size_t i = 0; i < trainer.model().size(); ++i) {
                max_diff = std::max(
                    max_diff,
                    std::abs(double(trainer.model().position(i).x)
                             - reference.model().position(i).x));
                max_diff = std::max(
                    max_diff,
                    std::abs(double(trainer.model().rawOpacity(i))
                             - reference.model().rawOpacity(i)));
            }
            std::printf("%-16s %-7s %12.2f %12.2f %10zu %12.2e\n",
                        orderingName(ord), cache ? "on" : "off",
                        s.h2d_bytes / 1e6, s.d2h_bytes / 1e6,
                        s.cache_hits, max_diff);
        }
    }
    std::printf("\nEvery row learns the same parameters (MaxDiff ~ float "
                "rounding); only the traffic changes — the paper's "
                "correctness argument for ordering freedom (§4.2.3).\n");
    return 0;
}
