/**
 * @file
 * Quickstart: train a small yard scene with CLM's offloaded trainer and
 * render a novel view — the five-minute tour of the public API.
 *
 *   1. Pick a scene preset (synthetic stand-ins for the paper datasets).
 *   2. Construct a Clm session (scene, ground truth and trainer).
 *   3. Train for a few batches; PSNR improves.
 *   4. Render a novel view and write it to a PPM file.
 */

#include <cstdio>

#include "core/clm.hpp"

int
main()
{
    using namespace clm;

    // 1. Configure: the Bicycle preset at a quick-demo size.
    ClmConfig config;
    config.scene = SceneSpec::bicycle();
    config.scene.train = {2000, 12, 64, 64};    // gaussians/views/res
    config.model_size = 1200;
    config.system = SystemKind::Clm;            // the offloaded trainer
    config.train.render.sh_degree = 1;
    config.train.loss.ssim_window = 5;

    // 2. Build the session. This generates the scene, renders ground
    //    truth, and wires up the CLM pipeline (attribute-wise offload,
    //    pinned pool, TSP ordering, caching, overlapped subset Adam).
    Clm session(config);
    std::printf("scene: %s, %zu views, model of %zu Gaussians\n",
                config.scene.name.c_str(), session.viewCount(),
                session.model().size());

    // 3. Train.
    double psnr_before = session.evaluatePsnr();
    auto stats = session.train(15);
    double psnr_after = session.evaluatePsnr();

    double h2d = 0, cache_hits = 0;
    for (const BatchStats &s : stats) {
        h2d += s.h2d_bytes;
        cache_hits += static_cast<double>(s.cache_hits);
    }
    std::printf("PSNR: %.2f dB -> %.2f dB after %zu batches\n",
                psnr_before, psnr_after, stats.size());
    std::printf("CPU->GPU parameter traffic: %.1f MB; cache hits: %.0f\n",
                h2d / 1e6, cache_hits);

    // 4. Novel view synthesis (the Figure 1 task).
    Camera novel = Camera::lookAt({7.5f, 2.0f, 4.0f}, {0, 0, 1},
                                  {0, 0, 1}, 64, 64, 1.0f);
    Image view = session.renderNovelView(novel);
    view.writePpm("quickstart_novel_view.ppm");
    std::printf("wrote quickstart_novel_view.ppm (%dx%d)\n", view.width(),
                view.height());
    return 0;
}
