/**
 * @file
 * City-scale training — the paper's headline scenario (§6.2): a model too
 * large for GPU-only training is trained through CLM's offloading.
 *
 * The example (a) uses the memory model to show the target model size
 * OOMs every GPU-resident system on an RTX 4090 but fits under CLM,
 * (b) trains the scaled-down functional equivalent end-to-end with the
 * full offloading pipeline, and (c) simulates the paper-scale batch on
 * both testbeds to report expected throughput.
 */

#include <cstdio>

#include "core/clm.hpp"
#include "offload/frustum_sets.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/memory_model.hpp"
#include "sim/metrics.hpp"
#include "train/clm_trainer.hpp"

int
main()
{
    using namespace clm;

    SceneSpec scene = SceneSpec::bigCity();
    DeviceSpec dev = DeviceSpec::rtx4090();
    const double n_target = 60e6;    // 60M Gaussians: GPU-only OOM

    // (a) Feasibility: who can train 60M Gaussians on a 24 GB 4090?
    std::printf("Training %.0fM Gaussians of %s on a %s:\n",
                n_target / 1e6, scene.name.c_str(), dev.name.c_str());
    for (SystemKind sys :
         {SystemKind::Baseline, SystemKind::EnhancedBaseline,
          SystemKind::NaiveOffload, SystemKind::Clm}) {
        MemoryBreakdown b = gpuMemoryDemand(sys, scene, n_target, dev);
        std::printf("  %-18s needs %5.1f GB -> %s\n", systemName(sys),
                    b.total() / 1e9,
                    b.total() <= dev.gpu_memory_bytes ? "fits" : "OOM");
    }

    // (b) Functional training at the CPU-feasible profile.
    ClmConfig config;
    config.scene = scene;
    config.scene.train = {3000, 16, 64, 36};
    config.model_size = 3000;
    config.system = SystemKind::Clm;
    config.train.render.sh_degree = 1;
    config.train.loss.ssim_window = 5;
    Clm session(config);

    double before = session.evaluatePsnr();
    auto stats = session.train(8);
    double after = session.evaluatePsnr();
    const auto &clm_trainer =
        dynamic_cast<const ClmTrainer &>(session.trainer());
    std::printf("\nFunctional run (scaled profile): PSNR %.2f -> %.2f dB; "
                "pinned pool %.1f MB\n",
                before, after, clm_trainer.pinnedBytes() / 1e6);
    const BatchStats &last = stats.back();
    std::printf("last batch: %.1f MB loaded, %.1f MB gradients stored, "
                "%zu cache hits, %zu Gaussians Adam-updated\n",
                last.h2d_bytes / 1e6, last.d2h_bytes / 1e6,
                last.cache_hits, last.adam_updated);

    // (c) Paper-scale performance projection on both testbeds.
    std::printf("\nProjected batch time at %.0fM Gaussians (batch %d, "
                "1080p):\n",
                n_target / 1e6, scene.batch_size);
    GaussianModel sim_model = generateSceneGaussians(scene, 40000);
    auto sim_cams = generateCameraPath(scene, 128, scene.sim.width,
                                       scene.sim.height);
    FrustumSets sets = computeFrustumSets(sim_model, sim_cams);
    BatchWorkload wl;
    for (int v = 0; v < scene.batch_size; ++v) {
        wl.sets.push_back(sets.sets[v]);
        wl.camera_centers.push_back(sim_cams[v].eye());
    }
    wl.n_synthetic = sim_model.size();
    wl.n_target = n_target;
    wl.pixels_per_view = double(scene.sim.width) * scene.sim.height;

    for (const DeviceSpec &d :
         {DeviceSpec::rtx4090(), DeviceSpec::rtx2080ti()}) {
        PlannerConfig pc;
        pc.system = SystemKind::Clm;
        BatchPlanResult plan = planBatch(pc, wl);
        CostModel cost(d);
        Timeline tl = simulate(plan.plan, cost);
        std::printf("  %-12s %6.2f s/batch (%5.1f img/s), GPU busy "
                    "%4.1f%%\n",
                    d.name.c_str(), tl.makespan,
                    scene.batch_size / tl.makespan,
                    computeUtilization(plan.plan, tl, d).sm_active);
    }
    return 0;
}
